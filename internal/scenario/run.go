package scenario

import (
	"fmt"
	"sort"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/core"
	"bluegs/internal/faults"
	"bluegs/internal/piconet"
	"bluegs/internal/radio"
	"bluegs/internal/sco"
	"bluegs/internal/sim"
	"bluegs/internal/traffic"
)

// runner holds the live state of one scenario run: the shared kernel, the
// scatternet medium (when interference is enabled), the piconet engines
// in creation order, and the chronological online admission log. A flat
// spec runs as a scatternet of one.
type runner struct {
	spec Spec
	s    *sim.Simulator
	// medium couples the piconets through FH co-channel collisions; nil
	// when interference is disabled.
	medium *radio.Medium
	// pns lists every piconet ever created (including removed ones, for
	// reporting) in creation order; byName addresses the same engines
	// from timeline events.
	pns    []*piconetRunner
	byName map[string]*piconetRunner
	// defaultName resolves timeline events with an empty Piconet field.
	defaultName string
	// fsched is the compiled fault plan: per-piconet link-outage oracles
	// and master-crash instants (empty, never nil, without faults).
	fsched *faults.Schedule
	// routes lists every route ever created (including retired ones, for
	// reporting) in creation order; routeByID addresses them from timeline
	// events and keeps retired ids claimed.
	routes    []*routeState
	routeByID map[piconet.FlowID]*routeState

	admissions []AdmissionRecord
	// err is the first fatal timeline-application error; it stops the
	// simulation and fails the run.
	err error
}

// piconetRunner is one piconet engine of the scatternet: its own polling
// scheduler and admission controller over the shared kernel clock, plus
// the cancellable traffic sources and the exported bound/rate bookkeeping
// behind its PiconetResult.
type piconetRunner struct {
	r    *runner
	name string

	pn    *piconet.Piconet
	sched *core.Scheduler
	ctrl  *admission.Controller
	// hop is the piconet's interference-wrapped channel model (nil when
	// the run has no medium).
	hop *radio.HopInterference

	// sources maps installed flows to their cancellable traffic sources;
	// a flow leaves the map when it is removed.
	sources map[piconet.FlowID]*source
	// bounds tracks, per GS flow, the loosest bound exported while the
	// flow was installed (see FlowResult.Bound); rates the admitted R.
	bounds map[piconet.FlowID]time.Duration
	rates  map[piconet.FlowID]float64
	// slaves tracks registered slaves across static setup and timeline.
	slaves map[piconet.SlaveID]bool
	// gsSpecs remembers every installed GS flow's declarative spec so the
	// recovery machinery can renegotiate or re-admit it elsewhere.
	gsSpecs map[piconet.FlowID]GSFlow
	// fates records what the fault/recovery machinery did to each flow
	// (see the Fate* constants; absent means untouched).
	fates map[piconet.FlowID]string
	// routeOf maps a hop flow's id to its route (nil-free for ordinary
	// flows): hop flows are installed by the route machinery and refuse
	// the per-flow operations (remove, move, renegotiate).
	routeOf map[piconet.FlowID]*routeState

	// removed marks a piconet that left the scatternet at removedAt; its
	// statistics are final as of that instant.
	removed   bool
	removedAt sim.Time
	// crashed marks a piconet whose master crashed at crashedAt: unlike a
	// removal, its flows are orphaned where they stand (sources keep
	// generating into queues nobody polls).
	crashed   bool
	crashedAt sim.Time
}

// source is one self-rescheduling traffic source; ev is its pending tick,
// cancelled when the flow is removed.
type source struct {
	ev sim.Event
}

// Run executes a scenario.
func Run(spec Spec) (*Result, error) { return RunWith(spec, Hooks{}) }

// RunWith executes a scenario with runtime hooks attached (a live tracer
// or a pre-built radio model instance). Hooked runs must not be served
// from a result cache: their side effects cannot be replayed. In
// scatternet runs a Tracer observes the first piconet only, and a live
// Radio instance is rejected (one stateful model cannot serve N piconets).
func RunWith(spec Spec, hooks Hooks) (*Result, error) {
	if err := spec.validateScatternet(); err != nil {
		return nil, err
	}
	if spec.AdmissionDerate < 0 || spec.AdmissionDerate >= 1 {
		return nil, fmt.Errorf("%w: AdmissionDerate %g outside [0,1)", ErrBadSpec, spec.AdmissionDerate)
	}
	if spec.flowCount() == 0 && len(spec.Routes) == 0 && len(spec.Timeline) == 0 {
		return nil, fmt.Errorf("%w: no flows", ErrBadSpec)
	}
	spec = spec.WithDefaults()
	if err := validateBridges(spec); err != nil {
		return nil, err
	}
	if err := validateTimeline(spec); err != nil {
		return nil, err
	}
	if err := validateFaults(spec); err != nil {
		return nil, err
	}
	piconets := spec.piconetSpecs()
	if hooks.Radio != nil && (len(piconets) > 1 || timelineAddsPiconet(spec)) {
		return nil, fmt.Errorf("%w: a live Radio hook cannot serve a multi-piconet run", ErrBadSpec)
	}

	// KernelWorkers is a pure execution knob: resolve it, then zero it so
	// neither the runners nor Result.Spec ever see a worker count (results
	// must compare byte-identical across worker counts and cache replays).
	workers := kernelWorkersFor(spec.KernelWorkers)
	spec.KernelWorkers = 0
	if groups := kernelShards(spec, hooks); len(groups) > 1 {
		return runSharded(spec, piconets, groups, workers)
	}

	r := &runner{
		spec:        spec,
		s:           sim.New(sim.WithSeed(spec.Seed)),
		byName:      make(map[string]*piconetRunner),
		defaultName: spec.defaultPiconetName(),
		fsched:      spec.Faults.Compile(),
	}
	if spec.Interference.Enabled {
		r.medium = radio.NewMedium(spec.Interference.Channels, spec.Interference.Window,
			func() time.Duration { return r.s.Now() })
	}
	if err := r.initRoutes(spec.Routes); err != nil {
		return nil, err
	}

	for i, ps := range piconets {
		// Runtime hooks attach to the first piconet only.
		h := Hooks{}
		if i == 0 {
			h = hooks
		}
		// Run-start piconets derate against the full planned scatternet,
		// not the few piconets attached so far: all of them will be
		// active the moment the run begins.
		if _, err := r.buildPiconet(ps, h, len(piconets)-1); err != nil {
			return nil, err
		}
	}

	// Timeline: each event applies at its simulated time; events sharing
	// an instant apply in slice order (the kernel is FIFO per instant).
	for _, ev := range spec.Timeline {
		ev := ev
		r.s.Schedule(ev.At, func() { r.applyEvent(ev) })
	}
	// Master crashes apply after any timeline events sharing their
	// instant: the scenario's planned changes happen, then the fault.
	for _, c := range spec.Faults.Crashes {
		name := c.Piconet
		r.s.Schedule(c.At, func() { r.applyCrash(name) })
	}

	for _, p := range r.pns {
		if err := p.pn.Start(); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}
	if err := r.s.Run(spec.Duration); err != nil {
		return nil, fmt.Errorf("scenario: run: %w", err)
	}
	for _, p := range r.pns {
		if err := p.pn.Err(); err != nil {
			return nil, fmt.Errorf("scenario: engine %q: %w", p.name, err)
		}
	}
	if r.err != nil {
		return nil, fmt.Errorf("scenario: timeline: %w", r.err)
	}

	return r.collect(), nil
}

// timelineAddsPiconet reports whether the timeline grows the scatternet.
func timelineAddsPiconet(spec Spec) bool {
	for _, ev := range spec.Timeline {
		if ev.AddPiconet != nil {
			return true
		}
	}
	return false
}

// successProb returns the admission derating input for a piconet
// co-located with others active piconets: 1 (no derating) when the knob
// is off or the run has no interference coupling, the static override
// when configured, and otherwise the conservative expected collision
// estimate for the current scatternet size.
func (r *runner) successProb(others int) float64 {
	if !r.spec.InterferenceAwareAdmission || r.medium == nil {
		return 1
	}
	if d := r.spec.AdmissionDerate; d > 0 && d < 1 {
		return d
	}
	return 1 - radio.ExpectedCollisionProb(others, r.medium.Channels())
}

// buildPiconet constructs one piconet engine — admission plan, piconet,
// scheduler and traffic sources — over the shared kernel. It is used both
// for the run-start piconets and for add_piconet timeline arrivals.
// others is the number of co-located piconets this one must expect to
// share the spectrum with (the derating input — run-start piconets pass
// the planned scatternet size, churn arrivals the current one).
func (r *runner) buildPiconet(ps PiconetSpec, hooks Hooks, others int) (*piconetRunner, error) {
	spec := r.spec
	p := &piconetRunner{
		r:       r,
		name:    ps.Name,
		sources: make(map[piconet.FlowID]*source),
		bounds:  make(map[piconet.FlowID]time.Duration),
		rates:   make(map[piconet.FlowID]float64),
		slaves:  make(map[piconet.SlaveID]bool),
		gsSpecs: make(map[piconet.FlowID]GSFlow),
		fates:   make(map[piconet.FlowID]string),
		routeOf: make(map[piconet.FlowID]*routeState),
	}
	hops := r.staticHopsAt(ps.Name)

	// Admission: the piconet-wide worst exchange must cover BE traffic,
	// including every flow the timeline may ever install here.
	admCfg := admission.Config{
		MaxExchange:    maxExchange(spec, ps),
		DirectionAware: spec.DirectionAware,
		SuccessProb:    r.successProb(others),
	}
	for _, l := range ps.SCO {
		ch, err := sco.NewChannel(l.Type)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		admCfg.SCOLinks = append(admCfg.SCOLinks, ch)
	}
	var admOpts []admission.ControllerOption
	if spec.WithoutPiggybacking {
		admOpts = append(admOpts, admission.WithoutPiggybacking())
	}
	var delayReqs []admission.DelayRequest
	for _, g := range ps.GS {
		delayReqs = append(delayReqs, admission.DelayRequest{
			Request: admission.Request{
				ID:      g.ID,
				Slave:   g.Slave,
				Dir:     g.Dir,
				Spec:    g.Spec(),
				Allowed: p.allowedFor(g.Allowed),
			},
			Target: spec.DelayTarget,
		})
	}
	// Route hops plan like run-start GS flows, each at its share of the
	// route's end-to-end budget and derated by its bridge's residency duty.
	for _, h := range hops {
		delayReqs = append(delayReqs, p.hopRequest(h.rt, h.rt.hops[h.idx]))
	}
	ctrl, err := admission.PlanForDelayBestEffort(delayReqs, admCfg, admOpts...)
	if err != nil {
		return nil, fmt.Errorf("scenario: admission: %w", err)
	}
	p.ctrl = ctrl

	// Piconet construction. The radio model is built fresh from the
	// declarative spec unless a live instance is hooked in; the medium
	// wraps it so the piconet both suffers and causes hop collisions.
	model := hooks.Radio
	if model == nil {
		if model, err = spec.Radio.Model(); err != nil {
			return nil, err
		}
	}
	if r.medium != nil {
		p.hop = r.medium.Attach(model)
		model = p.hop
	}
	// A build failure after this point must not leave the half-built
	// piconet interfering: a rejected add_piconet keeps the run going,
	// so an orphaned medium entry would shadow the scatternet forever.
	built := false
	defer func() {
		if !built && p.hop != nil {
			r.medium.Detach(p.hop)
		}
	}()
	pnOpts := []piconet.Option{piconet.WithRadio(model)}
	if spec.ARQ {
		pnOpts = append(pnOpts, piconet.WithARQ(true))
	}
	if hooks.Tracer != nil {
		pnOpts = append(pnOpts, piconet.WithTracer(hooks.Tracer))
	}
	// Fault plan: the compiled per-slave outage oracle gates this
	// piconet's radio (a piconet with no declared faults gets no oracle,
	// keeping the engine's delivery path — and its RNG draws — untouched).
	// Bridge residency composes into the same gate: a poll to a bridge
	// outside its window fails exactly like a declared outage, with zero
	// RNG draws either way.
	gate, reach := r.residencyFor(ps.Name)
	pf := r.fsched.Piconet(ps.Name)
	switch {
	case pf != nil && gate != nil:
		down := pf.Down
		pnOpts = append(pnOpts, piconet.WithLinkFault(func(s piconet.SlaveID, now sim.Time) bool {
			return down(s, now) || gate(s, now)
		}))
	case pf != nil:
		pnOpts = append(pnOpts, piconet.WithLinkFault(pf.Down))
	case gate != nil:
		pnOpts = append(pnOpts, piconet.WithLinkFault(gate))
	}
	if spec.usesRoutes() {
		// The delivery hook drives the bridges' store-and-forward handoff;
		// it is installed only when routes exist so route-free runs keep
		// the exact pre-bridge delivery path.
		pnOpts = append(pnOpts, piconet.WithDeliveryHook(func(flow piconet.FlowID, size int, at sim.Time, delivered bool) {
			r.onHopComplete(p, flow, size, at, delivered)
		}))
	}
	if spec.Recovery.Supervision > 0 {
		pnOpts = append(pnOpts, piconet.WithSupervision(spec.Recovery.Supervision, p.onLinkDead))
	}
	pn := piconet.New(r.s, pnOpts...)
	p.pn = pn
	for _, g := range ps.GS {
		if err := p.addSlave(g.Slave); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		if err := pn.AddFlow(piconet.FlowConfig{
			ID: g.ID, Slave: g.Slave, Dir: g.Dir,
			Class: piconet.Guaranteed, Allowed: p.allowedFor(g.Allowed),
		}); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		p.gsSpecs[g.ID] = g
	}
	for _, h := range hops {
		if err := p.installHop(h.rt, h.rt.hops[h.idx]); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}
	for _, b := range ps.BE {
		if err := p.addSlave(b.Slave); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		if err := pn.AddFlow(piconet.FlowConfig{
			ID: b.ID, Slave: b.Slave, Dir: b.Dir,
			Class: piconet.BestEffort, Allowed: p.allowedFor(b.Allowed),
		}); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}
	for _, l := range ps.SCO {
		if err := p.addSlave(l.Slave); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		if err := pn.AddSCOLink(l.Slave, l.Type); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}

	// Scheduler. Every piconet gets its own best-effort poller instance:
	// poller state (PFP predictions, RR cursors) must not leak across
	// piconets.
	bePoller, err := NewBEPoller(spec.BEPoller, PollerParams{PFPThreshold: spec.PFPThreshold})
	if err != nil {
		return nil, err
	}
	coreOpts := []core.Option{
		core.WithMode(spec.Mode),
		core.WithBEPoller(bePoller),
		core.WithLossRecovery(spec.LossRecovery),
	}
	if spec.RulesSet {
		coreOpts = append(coreOpts, core.WithImprovements(spec.Rules))
	}
	if reach != nil {
		// The scheduler plans around the residency windows: polls to an
		// absent bridge defer to its window-open instant instead of burning
		// failed exchanges.
		coreOpts = append(coreOpts, core.WithResidency(reach))
	}
	sched, err := core.New(pn, ctrl.Flows(), coreOpts...)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	pn.SetScheduler(sched)
	p.sched = sched
	p.noteBounds()

	// Traffic sources. A route's source lives in its first-hop piconet.
	for _, g := range ps.GS {
		p.attachGSSource(g)
	}
	for _, b := range ps.BE {
		p.attachBESource(b)
	}
	for _, h := range hops {
		if h.idx == 0 {
			p.attachRouteSource(h.rt)
		}
	}

	built = true
	r.pns = append(r.pns, p)
	r.byName[p.name] = p
	return p, nil
}

// allowedFor resolves a flow's baseband type set against the spec default.
func (p *piconetRunner) allowedFor(override baseband.TypeSet) baseband.TypeSet {
	if !override.Empty() {
		return override
	}
	return p.r.spec.Allowed
}

// addSlave registers a slave once across static setup and timeline.
func (p *piconetRunner) addSlave(id piconet.SlaveID) error {
	if p.slaves[id] {
		return nil
	}
	p.slaves[id] = true
	return p.pn.AddSlave(id)
}

// noteBounds folds the controller's current plan into the exported
// bound/rate bookkeeping: per flow the loosest bound ever in force (later
// admissions can shift priorities and grow x, weakening earlier promises)
// and the admitted rate.
func (p *piconetRunner) noteBounds() {
	for _, pf := range p.ctrl.Flows() {
		id := pf.Request.ID
		if pf.Bound > p.bounds[id] {
			p.bounds[id] = pf.Bound
		}
		p.rates[id] = pf.Request.Rate
	}
}

// attachGSSource starts a Guaranteed Service flow's CBR source.
func (p *piconetRunner) attachGSSource(g GSFlow) {
	p.attachSource(g.ID, g.Dir, traffic.CBR{Interval: g.Interval},
		traffic.UniformSize{Min: g.MinSize, Max: g.MaxSize}, g.Phase)
}

// attachBESource starts a best-effort flow's CBR source.
func (p *piconetRunner) attachBESource(b BEFlow) {
	gen := traffic.CBRForRate(b.RateKbps*1000, b.PacketSize)
	p.attachSource(b.ID, b.Dir, gen, traffic.FixedSize(b.PacketSize), b.Phase)
}

// maxBurst bounds a batched source's pre-enqueued arrivals per kernel
// event.
const maxBurst = 64

// batchWindow bounds how far ahead of the kernel clock a batched source
// pre-enqueues arrivals: half the timing wheel's 640 ms span, so the
// future-dated arrival events (and a down flow's arrival notifications)
// stay on the O(1) wheel instead of spilling into the overflow heap, and
// queues stay shallow enough for the per-run packet pool to recycle.
const batchWindow = 320 * time.Millisecond

// attachSource schedules a self-rescheduling traffic source whose pending
// tick stays cancellable (flow removal stops the source). With
// Spec.BatchTraffic, sources whose generator supports bursts pre-enqueue
// one burst of future-dated arrivals per kernel event (see
// piconet.EnqueuePacketAt) instead of one event per packet; a down
// flow's pre-enqueued arrivals notify the master at their arrival
// instants, so its arrival knowledge is untouched.
func (p *piconetRunner) attachSource(flow piconet.FlowID, dir piconet.Direction,
	gen traffic.Generator, sizes traffic.SizeDist, phase time.Duration) {
	if phase < 0 {
		phase = 0
	}
	r := p.r
	if r.spec.BatchTraffic {
		if bg, ok := gen.(traffic.BurstGenerator); ok {
			p.attachBurstSource(flow, bg, sizes, phase)
			return
		}
	}
	src := &source{}
	var tick func()
	tick = func() {
		_ = p.pn.EnqueuePacket(flow, sizes.Draw(r.s.Rand()))
		src.ev = r.s.After(gen.NextInterval(r.s.Rand()), tick)
	}
	src.ev = r.s.Schedule(r.s.Now()+phase, tick)
	p.sources[flow] = src
}

// attachBurstSource is the batched form of attachSource: each tick
// enqueues the packet arriving now, pre-enqueues up to a burst of further
// arrivals as future-dated packets, and reschedules itself at the first
// arrival it did not pre-enqueue. Intervals are drawn one at a time
// (BurstGenerator guarantees NextBurst ≡ repeated NextInterval, so the
// draw sequence is the same either way) and the loop stops at whichever
// comes first of the burst cap, the horizon, or batchWindow ahead of the
// clock — so the source draws exactly the randomness it uses and never
// floods the kernel with arrivals parked seconds in the future.
func (p *piconetRunner) attachBurstSource(flow piconet.FlowID, gen traffic.BurstGenerator,
	sizes traffic.SizeDist, phase time.Duration) {
	r := p.r
	horizon := r.spec.Duration
	src := &source{}
	var tick func()
	tick = func() {
		now := r.s.Now()
		_ = p.pn.EnqueuePacketAt(flow, sizes.Draw(r.s.Rand()), now)
		at := now
		for n := 1; ; n++ {
			at += gen.NextInterval(r.s.Rand())
			if n >= maxBurst || at > horizon || at > now+batchWindow {
				break
			}
			_ = p.pn.EnqueuePacketAt(flow, sizes.Draw(r.s.Rand()), at)
		}
		// The first arrival past the cutoff is the next tick: it enqueues
		// its own packet when it fires and continues the burst.
		src.ev = r.s.Schedule(at, tick)
	}
	src.ev = r.s.Schedule(r.s.Now()+phase, tick)
	p.sources[flow] = src
}

// maxExchange derives one piconet's worst ongoing ACL exchange Xi from
// the actual flow layout — including every flow the timeline may ever
// install there — as, per slave, the largest downlink leg plus the
// largest uplink leg (POLL/NULL legs count one slot). With DirectionAware
// disabled the paper's conservative assumption applies: any flow's
// exchange may carry maximal segments both ways.
func maxExchange(spec Spec, ps PiconetSpec) time.Duration {
	allowedFor := func(override baseband.TypeSet) baseband.TypeSet {
		if !override.Empty() {
			return override
		}
		return spec.Allowed
	}
	type legs struct{ down, up int }
	perSlave := map[piconet.SlaveID]*legs{}
	visit := func(slave piconet.SlaveID, dir piconet.Direction, allowed baseband.TypeSet, conservative bool) {
		l := perSlave[slave]
		if l == nil {
			l = &legs{down: 1, up: 1}
			perSlave[slave] = l
		}
		slots := allowed.MaxSlots()
		if conservative {
			// Both legs may carry maximal segments (paper default).
			if slots > l.down {
				l.down = slots
			}
			if slots > l.up {
				l.up = slots
			}
			return
		}
		if dir == piconet.Down && slots > l.down {
			l.down = slots
		}
		if dir == piconet.Up && slots > l.up {
			l.up = slots
		}
	}
	visitGS := func(g GSFlow) {
		visit(g.Slave, g.Dir, allowedFor(g.Allowed), !spec.DirectionAware)
	}
	visitBE := func(b BEFlow) {
		// Best-effort exchanges serve whatever is queued each way, so
		// the legs are direction-specific regardless of the admission
		// mode.
		visit(b.Slave, b.Dir, allowedFor(b.Allowed), false)
	}
	for _, g := range ps.GS {
		visitGS(g)
	}
	for _, b := range ps.BE {
		visitBE(b)
	}
	// Route hops hosted here count like GS flows of their endpoint.
	visitRoute := func(rt RouteSpec) {
		hops, err := spec.routeHops(rt)
		if err != nil {
			return // validation rejects the spec before Xi matters
		}
		for _, h := range hops {
			if h.Piconet == ps.Name {
				visit(h.Slave, h.Dir, allowedFor(rt.Allowed), !spec.DirectionAware)
			}
		}
	}
	for _, rt := range spec.Routes {
		visitRoute(rt)
	}
	def := spec.defaultPiconetName()
	for _, ev := range spec.Timeline {
		// Timeline arrivals targeting this piconet are folded in
		// conservatively: Xi must cover any exchange that can occur at
		// any point of the run.
		target := ev.Piconet
		if target == "" {
			target = def
		}
		// A move_flow whose destination is (or may be) this piconet
		// brings the moved flow's exchange here.
		if ev.Move != nil && target != ps.Name {
			if ev.Move.To == ps.Name || ev.Move.To == "" {
				if g, ok := spec.findGS(target, ev.Move.Flow); ok {
					visitGS(g)
				}
			}
			continue
		}
		if target != ps.Name {
			continue
		}
		if ev.AddGS != nil {
			visitGS(*ev.AddGS)
		}
		if ev.AddBE != nil {
			visitBE(*ev.AddBE)
		}
	}
	for _, ev := range spec.Timeline {
		// Timeline routes are scatternet-level: any of their hops may land
		// here regardless of the event's (ignored) piconet address.
		if ev.AddRoute != nil {
			visitRoute(*ev.AddRoute)
		}
	}
	if spec.Recovery.Policy == faults.PolicyHandoff {
		// The handoff recovery policy can move any GS flow of any piconet
		// here; Xi must cover every exchange it might ever host.
		for _, other := range spec.piconetSpecs() {
			for _, g := range other.GS {
				visitGS(g)
			}
		}
		for _, ev := range spec.Timeline {
			if ev.AddGS != nil {
				visitGS(*ev.AddGS)
			}
			if ev.AddPiconet != nil {
				for _, g := range ev.AddPiconet.GS {
					visitGS(g)
				}
			}
		}
	}
	maxSlots := 2
	for _, l := range perSlave {
		if s := l.down + l.up; s > maxSlots {
			maxSlots = s
		}
	}
	return baseband.SlotsToDuration(maxSlots)
}

// findGS locates the declarative spec of a GS flow by (piconet, id)
// across the static sets, every timeline addition, and — for chained
// handoffs — the moves that brought the flow there (move validation
// forbids cycles, so the recursion terminates).
func (s Spec) findGS(pnName string, id piconet.FlowID) (GSFlow, bool) {
	for _, ps := range s.piconetSpecs() {
		if ps.Name != pnName {
			continue
		}
		for _, g := range ps.GS {
			if g.ID == id {
				return g, true
			}
		}
	}
	def := s.defaultPiconetName()
	for _, ev := range s.Timeline {
		if ev.AddGS != nil {
			target := ev.Piconet
			if target == "" {
				target = def
			}
			if target == pnName && ev.AddGS.ID == id {
				return *ev.AddGS, true
			}
		}
		if ev.AddPiconet != nil && ev.AddPiconet.Name == pnName {
			for _, g := range ev.AddPiconet.GS {
				if g.ID == id {
					return g, true
				}
			}
		}
	}
	for _, ev := range s.Timeline {
		if ev.Move != nil && ev.Move.Flow == id && ev.Move.To == pnName {
			source := ev.Piconet
			if source == "" {
				source = def
			}
			if g, ok := s.findGS(source, id); ok {
				return g, true
			}
		}
	}
	return GSFlow{}, false
}

// reject logs a refused timeline operation.
func (r *runner) reject(pnName, op string, flow piconet.FlowID, slave piconet.SlaveID, reason string) {
	r.admissions = append(r.admissions, AdmissionRecord{
		At: r.s.Now(), Op: op, Piconet: pnName, Flow: flow, Slave: slave, Reason: reason,
	})
}

// accept logs an applied timeline operation.
func (r *runner) accept(rec AdmissionRecord) {
	rec.At = r.s.Now()
	rec.Accepted = true
	r.admissions = append(r.admissions, rec)
}

func (p *piconetRunner) reject(op string, flow piconet.FlowID, slave piconet.SlaveID, reason string) {
	p.r.reject(p.name, op, flow, slave, reason)
}

func (p *piconetRunner) accept(rec AdmissionRecord) {
	rec.Piconet = p.name
	p.r.accept(rec)
}

// applyEvent dispatches one timeline event at its simulated time. Spec
// errors (which static validation should have caught) are fatal: they
// stop the simulation and fail the run. Admission refusals — including a
// flow aimed at a piconet that already left — are recorded outcomes, not
// errors.
func (r *runner) applyEvent(ev TimelineEvent) {
	if r.err != nil {
		return
	}
	switch {
	case ev.AddPiconet != nil:
		r.applyAddPiconet(*ev.AddPiconet)
	case ev.RemovePiconet != "":
		r.applyRemovePiconet(ev.RemovePiconet)
	case ev.AddRoute != nil:
		r.applyAddRoute(*ev.AddRoute)
	case ev.RemoveRoute != piconet.None:
		r.applyRemoveRoute(ev.RemoveRoute)
	default:
		target := ev.Piconet
		if target == "" {
			target = r.defaultName
		}
		p, ok := r.byName[target]
		switch {
		case !ok:
			flow, slave := ev.subject()
			r.reject(target, ev.Op(), flow, slave, "unknown piconet")
		case p.removed:
			flow, slave := ev.subject()
			r.reject(target, ev.Op(), flow, slave, "piconet removed")
		case p.crashed:
			flow, slave := ev.subject()
			r.reject(target, ev.Op(), flow, slave, "piconet crashed")
		default:
			p.applyEvent(ev)
		}
	}
	if r.err != nil {
		r.s.Stop()
	}
}

// applyEvent dispatches a flow or SCO operation on one piconet.
func (p *piconetRunner) applyEvent(ev TimelineEvent) {
	switch {
	case ev.AddGS != nil:
		p.applyAddGS(*ev.AddGS)
	case ev.AddBE != nil:
		p.applyAddBE(*ev.AddBE)
	case ev.Remove != piconet.None:
		p.applyRemove(ev.Remove)
	case ev.AddSCO != nil:
		p.applyAddSCO(*ev.AddSCO)
	case ev.DropSCO != 0:
		p.applyDropSCO(ev.DropSCO)
	case ev.Move != nil:
		p.applyMove(*ev.Move)
	case ev.Renegotiate != nil:
		p.applyRenegotiate(*ev.Renegotiate)
	}
}

// applyAddPiconet brings a new piconet into the scatternet: its static GS
// set is planned offline (clamped, like a run-start plan), its master
// starts polling at the next opportunity, and its name becomes a timeline
// target. Build errors are recorded as rejections — the scatternet keeps
// running.
func (r *runner) applyAddPiconet(ps PiconetSpec) {
	if _, dup := r.byName[ps.Name]; dup {
		r.reject(ps.Name, OpAddPiconet, 0, 0, "piconet name already used")
		return
	}
	others := 0
	if r.medium != nil {
		// Every piconet active right now will interfere with the
		// newcomer (it attaches during the build, after this count).
		others = r.medium.ActivePiconets()
	}
	p, err := r.buildPiconet(ps, Hooks{}, others)
	if err != nil {
		r.reject(ps.Name, OpAddPiconet, 0, 0, err.Error())
		return
	}
	if r.err = p.pn.Start(); r.err != nil {
		return
	}
	r.accept(AdmissionRecord{Op: OpAddPiconet, Piconet: ps.Name})
	r.rederate(p)
}

// applyRemovePiconet retires a whole piconet: every source stops, the
// master polls no more, and — under interference — its airtime stops
// colliding with the survivors. Statistics freeze at the removal instant.
func (r *runner) applyRemovePiconet(name string) {
	p, ok := r.byName[name]
	if !ok {
		r.reject(name, OpRemovePiconet, 0, 0, "unknown piconet")
		return
	}
	if p.removed {
		r.reject(name, OpRemovePiconet, 0, 0, "piconet removed")
		return
	}
	// Cancel sources in flow-id order: deterministic regardless of map
	// iteration.
	ids := make([]piconet.FlowID, 0, len(p.sources))
	for id := range p.sources {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r.s.Cancel(p.sources[id].ev)
		delete(p.sources, id)
	}
	p.pn.Stop()
	// Batched sources pre-enqueue future arrivals; packets stamped after
	// the removal never happen and must not stay counted as offered.
	p.pn.PruneFutureArrivals(r.s.Now())
	if p.hop != nil {
		r.medium.Detach(p.hop)
	}
	p.removed = true
	p.removedAt = r.s.Now()
	r.accept(AdmissionRecord{Op: OpRemovePiconet, Piconet: name})
	// Routes traversing the departed piconet lose their path for good.
	r.severRoutesThrough(name, FateSuspended, fmt.Sprintf("piconet %q removed", name))
	r.rederate(nil)
}

// rederate re-evaluates the interference derating of every surviving
// piconet after the scatternet changed size: a join tightens the
// collision estimate (bounds loosen), a leave relaxes it (bounds
// tighten). skip is the piconet that just joined — it planned against
// the new size already. A piconet whose existing contracts cannot absorb
// the new estimate keeps its previous derate and logs a rejected
// rederate record; unchanged estimates (the static override, or a
// no-interference run) log nothing.
func (r *runner) rederate(skip *piconetRunner) {
	if !r.spec.InterferenceAwareAdmission || r.medium == nil {
		return
	}
	for _, p := range r.pns {
		if p.removed || p == skip {
			continue
		}
		s := r.successProb(r.medium.ActivePiconets() - 1)
		if s == p.ctrl.SuccessProb() {
			continue
		}
		if err := p.ctrl.SetSuccessProb(s); err != nil {
			p.reject(OpRederate, 0, 0, err.Error())
			continue
		}
		if r.err = p.sched.Replan(p.ctrl.Flows()); r.err != nil {
			return
		}
		p.noteBounds()
		p.accept(AdmissionRecord{Op: OpRederate})
	}
}

// applyAddGS runs the paper's online admission test for a mid-run GS
// arrival and installs the flow on success.
func (p *piconetRunner) applyAddGS(g GSFlow) {
	r := p.r
	pf, err := p.ctrl.AdmitForDelay(admission.DelayRequest{
		Request: admission.Request{
			ID:      g.ID,
			Slave:   g.Slave,
			Dir:     g.Dir,
			Spec:    g.Spec(),
			Allowed: p.allowedFor(g.Allowed),
		},
		Target: r.spec.DelayTarget,
	})
	if err != nil {
		p.reject(OpAddGS, g.ID, g.Slave, err.Error())
		return
	}
	if r.err = p.addSlave(g.Slave); r.err != nil {
		return
	}
	if r.err = p.pn.AddFlow(piconet.FlowConfig{
		ID: g.ID, Slave: g.Slave, Dir: g.Dir,
		Class: piconet.Guaranteed, Allowed: p.allowedFor(g.Allowed),
	}); r.err != nil {
		return
	}
	if r.err = p.sched.Replan(p.ctrl.Flows()); r.err != nil {
		return
	}
	p.noteBounds()
	p.gsSpecs[g.ID] = g
	p.attachGSSource(g)
	p.pn.Kick()
	p.accept(AdmissionRecord{
		Op: OpAddGS, Flow: g.ID, Slave: g.Slave,
		Bound: pf.Bound, Rate: pf.Request.Rate,
	})
}

// applyAddBE installs a mid-run best-effort arrival (no admission test).
func (p *piconetRunner) applyAddBE(b BEFlow) {
	r := p.r
	if r.err = p.addSlave(b.Slave); r.err != nil {
		return
	}
	if r.err = p.pn.AddFlow(piconet.FlowConfig{
		ID: b.ID, Slave: b.Slave, Dir: b.Dir,
		Class: piconet.BestEffort, Allowed: p.allowedFor(b.Allowed),
	}); r.err != nil {
		return
	}
	p.sched.RefreshBE()
	p.attachBESource(b)
	p.pn.Kick()
	p.accept(AdmissionRecord{Op: OpAddBE, Flow: b.ID, Slave: b.Slave})
}

// applyRemove retires a flow: its source stops, queued packets drop, and
// a Guaranteed Service flow's bandwidth is released by re-planning.
func (p *piconetRunner) applyRemove(id piconet.FlowID) {
	r := p.r
	if p.routeOf[id] != nil {
		p.reject(OpRemoveFlow, id, 0, "flow belongs to a route; use remove_route")
		return
	}
	src, installed := p.sources[id]
	if !installed {
		// The flow's admission was rejected (or it was already
		// removed): the departure has nothing to retire.
		p.reject(OpRemoveFlow, id, 0, "flow not installed")
		return
	}
	r.s.Cancel(src.ev)
	delete(p.sources, id)
	cfg, _ := p.pn.FlowConfig(id)
	if r.err = p.pn.RetireFlow(id); r.err != nil {
		return
	}
	if _, isGS := p.ctrl.Find(id); isGS {
		if r.err = p.ctrl.Remove(id); r.err != nil {
			return
		}
		if r.err = p.sched.Replan(p.ctrl.Flows()); r.err != nil {
			return
		}
		p.noteBounds()
	} else {
		p.sched.RefreshBE()
	}
	p.accept(AdmissionRecord{Op: OpRemoveFlow, Flow: id, Slave: cfg.Slave})
}

// applyAddSCO reserves a mid-run voice link if both the piconet's SCO
// capacity and the admitted Guaranteed Service contracts allow it. Every
// check runs before any state changes, so a refused call leaves no trace
// (no phantom slave registration, no half-installed reservation).
func (p *piconetRunner) applyAddSCO(l SCOLinkSpec) {
	r := p.r
	ch, err := sco.NewChannel(l.Type)
	if err != nil {
		p.reject(OpAddSCO, 0, l.Slave, err.Error())
		return
	}
	if err := p.pn.CheckSCOLink(l.Slave, l.Type); err != nil {
		p.reject(OpAddSCO, 0, l.Slave, err.Error())
		return
	}
	if err := p.ctrl.SetSCOLinks(append(p.ctrl.SCOLinks(), ch)); err != nil {
		// The GS set no longer fits around the reservations: the call
		// is refused (SetSCOLinks left the controller unchanged).
		p.reject(OpAddSCO, 0, l.Slave, err.Error())
		return
	}
	if r.err = p.addSlave(l.Slave); r.err != nil {
		return
	}
	if r.err = p.pn.AddSCOLink(l.Slave, l.Type); r.err != nil {
		return
	}
	if r.err = p.sched.Replan(p.ctrl.Flows()); r.err != nil {
		return
	}
	p.noteBounds()
	p.accept(AdmissionRecord{Op: OpAddSCO, Slave: l.Slave})
}

// applyDropSCO releases a voice link and the admission headroom it held.
func (p *piconetRunner) applyDropSCO(slave piconet.SlaveID) {
	r := p.r
	if err := p.pn.DropSCOLink(slave); err != nil {
		p.reject(OpDropSCO, 0, slave, err.Error())
		return
	}
	links := p.ctrl.SCOLinks()
	if len(links) > 0 {
		// Links are interchangeable at the admission level (one
		// aggregate stream of count×type): release any one.
		if r.err = p.ctrl.SetSCOLinks(links[:len(links)-1]); r.err != nil {
			return
		}
		if r.err = p.sched.Replan(p.ctrl.Flows()); r.err != nil {
			return
		}
		p.noteBounds()
	}
	p.accept(AdmissionRecord{Op: OpDropSCO, Slave: slave})
}

// collect assembles one piconet's result. end is the measurement horizon:
// the run's end, or the removal instant for piconets that left early.
func (p *piconetRunner) collect(end sim.Time) PiconetResult {
	if p.removed {
		end = p.removedAt
	}
	if p.crashed {
		end = p.crashedAt
	}
	pn := p.pn
	pr := PiconetResult{
		Name:       p.name,
		Removed:    p.removed,
		Crashed:    p.crashed,
		SlaveKbps:  make(map[piconet.SlaveID]float64),
		SCOKbps:    make(map[piconet.SlaveID]float64),
		Slots:      pn.SlotAccount(end),
		GSPolls:    p.sched.GSPolls(),
		BEPolls:    p.sched.BEPolls(),
		Skipped:    p.sched.SkippedPolls(),
		Admitted:   p.ctrl.Flows(),
		Admissions: p.admissionSlice(),
	}
	if p.hop != nil {
		pr.Utilization = p.hop.Utilization(end)
	}
	for _, id := range pn.Flows() {
		cfg, _ := pn.FlowConfig(id)
		delay, _ := pn.FlowDelayStats(id)
		delivered, _ := pn.FlowDelivered(id)
		offered, _ := pn.FlowOffered(id)
		lost, _ := pn.FlowLost(id)
		fr := FlowResult{
			ID:          id,
			Piconet:     p.name,
			Slave:       cfg.Slave,
			Dir:         cfg.Dir,
			Class:       cfg.Class,
			Offered:     offered.Packets(),
			Delivered:   delivered.Packets(),
			Lost:        lost.Packets(),
			Kbps:        delivered.Kbps(end),
			DelayMax:    delay.Max(),
			DelayMean:   delay.Mean(),
			DelayP99:    delay.Quantile(0.99),
			DelayJitter: delay.StdDev(),
			Delay:       delay,
		}
		if bound, ok := p.bounds[id]; ok {
			fr.Bound = bound
			fr.Rate = p.rates[id]
		}
		if rt := p.routeOf[id]; rt != nil {
			fr.Route = rt.spec.Name
		}
		fr.Fate = p.fates[id]
		pr.Flows = append(pr.Flows, fr)
	}
	for _, slave := range pn.Slaves() {
		pr.SlaveKbps[slave] = pn.SlaveThroughputKbps(slave, end)
		if down, up, ok := pn.SCOMeters(slave); ok {
			pr.SCOKbps[slave] = down.Kbps(end) + up.Kbps(end)
		}
	}
	return pr
}

// admissionSlice filters the run's chronological admission log down to
// this piconet's records.
func (p *piconetRunner) admissionSlice() []AdmissionRecord {
	var out []AdmissionRecord
	for _, rec := range p.r.admissions {
		if rec.Piconet == p.name {
			out = append(out, rec)
		}
	}
	return out
}

// collect assembles the run's result: per-piconet results plus the
// scatternet-wide rollup. A single-piconet run's rollup is its piconet's
// result verbatim (byte-identical to the pre-scatternet runner).
func (r *runner) collect() *Result {
	elapsed := r.s.Now()
	res := &Result{
		Spec:       r.spec,
		Elapsed:    elapsed,
		Events:     r.s.Executed(),
		Admissions: r.admissions,
	}
	for _, p := range r.pns {
		res.Piconets = append(res.Piconets, p.collect(elapsed))
	}
	res.Routes = r.collectRoutes(elapsed)
	rollup(res)
	return res
}

// rollup derives the scatternet-wide aggregate fields from the
// per-piconet results already in res. A single-piconet run's rollup is
// its piconet's result verbatim (byte-identical to the pre-scatternet
// runner). Shared by the single-kernel and sharded collectors so the
// aggregation arithmetic cannot drift between them.
func rollup(res *Result) {
	if len(res.Piconets) == 1 {
		pr := res.Piconets[0]
		res.Flows = pr.Flows
		res.SlaveKbps = pr.SlaveKbps
		res.SCOKbps = pr.SCOKbps
		res.Slots = pr.Slots
		res.GSPolls, res.BEPolls, res.Skipped = pr.GSPolls, pr.BEPolls, pr.Skipped
		res.Admitted = pr.Admitted
		return
	}
	res.SlaveKbps = make(map[piconet.SlaveID]float64)
	res.SCOKbps = make(map[piconet.SlaveID]float64)
	for _, pr := range res.Piconets {
		res.Flows = append(res.Flows, pr.Flows...)
		for slave, kbps := range pr.SlaveKbps {
			res.SlaveKbps[slave] += kbps
		}
		for slave, kbps := range pr.SCOKbps {
			res.SCOKbps[slave] += kbps
		}
		res.Slots = addSlots(res.Slots, pr.Slots)
		res.GSPolls += pr.GSPolls
		res.BEPolls += pr.BEPolls
		res.Skipped += pr.Skipped
		res.Admitted = append(res.Admitted, pr.Admitted...)
	}
}

// addSlots sums two slot accounts field by field (the scatternet rollup:
// N piconets occupy N channels' worth of slots).
func addSlots(a, b piconet.SlotAccount) piconet.SlotAccount {
	a.GSData += b.GSData
	a.GSOverhead += b.GSOverhead
	a.BEData += b.BEData
	a.BEOverhead += b.BEOverhead
	a.Retransmit += b.Retransmit
	a.SCO += b.SCO
	a.Idle += b.Idle
	a.Total += b.Total
	return a
}
