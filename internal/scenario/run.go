package scenario

import (
	"fmt"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/core"
	"bluegs/internal/piconet"
	"bluegs/internal/sco"
	"bluegs/internal/sim"
	"bluegs/internal/traffic"
)

// runner holds the live state of one scenario run: the simulated piconet
// and scheduler, the admission controller (shared by the static plan and
// the online timeline), the cancellable traffic sources, and the exported
// bound/rate bookkeeping behind Result.
type runner struct {
	spec  Spec
	s     *sim.Simulator
	pn    *piconet.Piconet
	sched *core.Scheduler
	ctrl  *admission.Controller

	// sources maps installed flows to their cancellable traffic sources;
	// a flow leaves the map when it is removed.
	sources map[piconet.FlowID]*source
	// bounds tracks, per GS flow, the loosest bound exported while the
	// flow was installed (see FlowResult.Bound); rates the admitted R.
	bounds map[piconet.FlowID]time.Duration
	rates  map[piconet.FlowID]float64
	// slaves tracks registered slaves across static setup and timeline.
	slaves map[piconet.SlaveID]bool

	admissions []AdmissionRecord
	// err is the first fatal timeline-application error; it stops the
	// simulation and fails the run.
	err error
}

// source is one self-rescheduling traffic source; ev is its pending tick,
// cancelled when the flow is removed.
type source struct {
	ev sim.Event
}

// Run executes a scenario.
func Run(spec Spec) (*Result, error) { return RunWith(spec, Hooks{}) }

// RunWith executes a scenario with runtime hooks attached (a live tracer
// or a pre-built radio model instance). Hooked runs must not be served
// from a result cache: their side effects cannot be replayed.
func RunWith(spec Spec, hooks Hooks) (*Result, error) {
	if len(spec.GS) == 0 && len(spec.BE) == 0 && len(spec.Timeline) == 0 {
		return nil, fmt.Errorf("%w: no flows", ErrBadSpec)
	}
	spec = spec.WithDefaults()
	if err := validateTimeline(spec); err != nil {
		return nil, err
	}

	r := &runner{
		spec:    spec,
		sources: make(map[piconet.FlowID]*source),
		bounds:  make(map[piconet.FlowID]time.Duration),
		rates:   make(map[piconet.FlowID]float64),
		slaves:  make(map[piconet.SlaveID]bool),
	}

	// Admission: the piconet-wide worst exchange must cover BE traffic,
	// including every flow the timeline may ever install.
	admCfg := admission.Config{MaxExchange: maxExchange(spec), DirectionAware: spec.DirectionAware}
	for _, l := range spec.SCO {
		ch, err := sco.NewChannel(l.Type)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		admCfg.SCOLinks = append(admCfg.SCOLinks, ch)
	}
	var admOpts []admission.ControllerOption
	if spec.WithoutPiggybacking {
		admOpts = append(admOpts, admission.WithoutPiggybacking())
	}
	var delayReqs []admission.DelayRequest
	for _, g := range spec.GS {
		delayReqs = append(delayReqs, admission.DelayRequest{
			Request: admission.Request{
				ID:      g.ID,
				Slave:   g.Slave,
				Dir:     g.Dir,
				Spec:    g.Spec(),
				Allowed: r.allowedFor(g.Allowed),
			},
			Target: spec.DelayTarget,
		})
	}
	ctrl, err := admission.PlanForDelayBestEffort(delayReqs, admCfg, admOpts...)
	if err != nil {
		return nil, fmt.Errorf("scenario: admission: %w", err)
	}
	r.ctrl = ctrl

	// Piconet construction. The radio model is built fresh from the
	// declarative spec unless a live instance is hooked in.
	s := sim.New(sim.WithSeed(spec.Seed))
	model := hooks.Radio
	if model == nil {
		if model, err = spec.Radio.Model(); err != nil {
			return nil, err
		}
	}
	pnOpts := []piconet.Option{piconet.WithRadio(model)}
	if spec.ARQ {
		pnOpts = append(pnOpts, piconet.WithARQ(true))
	}
	if hooks.Tracer != nil {
		pnOpts = append(pnOpts, piconet.WithTracer(hooks.Tracer))
	}
	pn := piconet.New(s, pnOpts...)
	r.s, r.pn = s, pn
	for _, g := range spec.GS {
		if err := r.addSlave(g.Slave); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		if err := pn.AddFlow(piconet.FlowConfig{
			ID: g.ID, Slave: g.Slave, Dir: g.Dir,
			Class: piconet.Guaranteed, Allowed: r.allowedFor(g.Allowed),
		}); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}
	for _, b := range spec.BE {
		if err := r.addSlave(b.Slave); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		if err := pn.AddFlow(piconet.FlowConfig{
			ID: b.ID, Slave: b.Slave, Dir: b.Dir,
			Class: piconet.BestEffort, Allowed: r.allowedFor(b.Allowed),
		}); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}
	for _, l := range spec.SCO {
		if err := r.addSlave(l.Slave); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		if err := pn.AddSCOLink(l.Slave, l.Type); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}

	// Scheduler.
	bePoller, err := NewBEPoller(spec.BEPoller, PollerParams{PFPThreshold: spec.PFPThreshold})
	if err != nil {
		return nil, err
	}
	coreOpts := []core.Option{
		core.WithMode(spec.Mode),
		core.WithBEPoller(bePoller),
		core.WithLossRecovery(spec.LossRecovery),
	}
	if spec.RulesSet {
		coreOpts = append(coreOpts, core.WithImprovements(spec.Rules))
	}
	sched, err := core.New(pn, ctrl.Flows(), coreOpts...)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	pn.SetScheduler(sched)
	r.sched = sched
	r.noteBounds()

	// Traffic sources.
	for _, g := range spec.GS {
		r.attachGSSource(g)
	}
	for _, b := range spec.BE {
		r.attachBESource(b)
	}

	// Timeline: each event applies at its simulated time; events sharing
	// an instant apply in slice order (the kernel is FIFO per instant).
	for _, ev := range spec.Timeline {
		ev := ev
		s.Schedule(ev.At, func() { r.applyEvent(ev) })
	}

	if err := pn.Start(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Run(spec.Duration); err != nil {
		return nil, fmt.Errorf("scenario: run: %w", err)
	}
	if err := pn.Err(); err != nil {
		return nil, fmt.Errorf("scenario: engine: %w", err)
	}
	if r.err != nil {
		return nil, fmt.Errorf("scenario: timeline: %w", r.err)
	}

	return r.collect(), nil
}

// allowedFor resolves a flow's baseband type set against the spec default.
func (r *runner) allowedFor(override baseband.TypeSet) baseband.TypeSet {
	if !override.Empty() {
		return override
	}
	return r.spec.Allowed
}

// addSlave registers a slave once across static setup and timeline.
func (r *runner) addSlave(id piconet.SlaveID) error {
	if r.slaves[id] {
		return nil
	}
	r.slaves[id] = true
	return r.pn.AddSlave(id)
}

// noteBounds folds the controller's current plan into the exported
// bound/rate bookkeeping: per flow the loosest bound ever in force (later
// admissions can shift priorities and grow x, weakening earlier promises)
// and the admitted rate.
func (r *runner) noteBounds() {
	for _, pf := range r.ctrl.Flows() {
		id := pf.Request.ID
		if pf.Bound > r.bounds[id] {
			r.bounds[id] = pf.Bound
		}
		r.rates[id] = pf.Request.Rate
	}
}

// attachGSSource starts a Guaranteed Service flow's CBR source.
func (r *runner) attachGSSource(g GSFlow) {
	r.attachSource(g.ID, traffic.CBR{Interval: g.Interval},
		traffic.UniformSize{Min: g.MinSize, Max: g.MaxSize}, g.Phase)
}

// attachBESource starts a best-effort flow's CBR source.
func (r *runner) attachBESource(b BEFlow) {
	gen := traffic.CBRForRate(b.RateKbps*1000, b.PacketSize)
	r.attachSource(b.ID, gen, traffic.FixedSize(b.PacketSize), b.Phase)
}

// attachSource schedules a self-rescheduling traffic source whose pending
// tick stays cancellable (flow removal stops the source).
func (r *runner) attachSource(flow piconet.FlowID, gen traffic.Generator,
	sizes traffic.SizeDist, phase time.Duration) {
	if phase < 0 {
		phase = 0
	}
	src := &source{}
	var tick func()
	tick = func() {
		_ = r.pn.EnqueuePacket(flow, sizes.Draw(r.s.Rand()))
		src.ev = r.s.After(gen.NextInterval(r.s.Rand()), tick)
	}
	src.ev = r.s.Schedule(r.s.Now()+phase, tick)
	r.sources[flow] = src
}

// maxExchange derives the piconet-wide worst ongoing ACL exchange Xi from
// the actual flow layout — including every flow the timeline may install —
// as, per slave, the largest downlink leg plus the largest uplink leg
// (POLL/NULL legs count one slot). With DirectionAware disabled the
// paper's conservative assumption applies: any flow's exchange may carry
// maximal segments both ways.
func maxExchange(spec Spec) time.Duration {
	allowedFor := func(override baseband.TypeSet) baseband.TypeSet {
		if !override.Empty() {
			return override
		}
		return spec.Allowed
	}
	type legs struct{ down, up int }
	perSlave := map[piconet.SlaveID]*legs{}
	visit := func(slave piconet.SlaveID, dir piconet.Direction, allowed baseband.TypeSet, conservative bool) {
		l := perSlave[slave]
		if l == nil {
			l = &legs{down: 1, up: 1}
			perSlave[slave] = l
		}
		slots := allowed.MaxSlots()
		if conservative {
			// Both legs may carry maximal segments (paper default).
			if slots > l.down {
				l.down = slots
			}
			if slots > l.up {
				l.up = slots
			}
			return
		}
		if dir == piconet.Down && slots > l.down {
			l.down = slots
		}
		if dir == piconet.Up && slots > l.up {
			l.up = slots
		}
	}
	visitGS := func(g GSFlow) {
		visit(g.Slave, g.Dir, allowedFor(g.Allowed), !spec.DirectionAware)
	}
	visitBE := func(b BEFlow) {
		// Best-effort exchanges serve whatever is queued each way, so
		// the legs are direction-specific regardless of the admission
		// mode.
		visit(b.Slave, b.Dir, allowedFor(b.Allowed), false)
	}
	for _, g := range spec.GS {
		visitGS(g)
	}
	for _, b := range spec.BE {
		visitBE(b)
	}
	for _, ev := range spec.Timeline {
		// Timeline arrivals are folded in conservatively: Xi must cover
		// any exchange that can occur at any point of the run.
		if ev.AddGS != nil {
			visitGS(*ev.AddGS)
		}
		if ev.AddBE != nil {
			visitBE(*ev.AddBE)
		}
	}
	maxSlots := 2
	for _, l := range perSlave {
		if s := l.down + l.up; s > maxSlots {
			maxSlots = s
		}
	}
	return baseband.SlotsToDuration(maxSlots)
}

// collect assembles the result.
func (r *runner) collect() *Result {
	s, pn := r.s, r.pn
	elapsed := s.Now()
	res := &Result{
		Spec:       r.spec,
		Elapsed:    elapsed,
		Events:     s.Executed(),
		SlaveKbps:  make(map[piconet.SlaveID]float64),
		SCOKbps:    make(map[piconet.SlaveID]float64),
		Slots:      pn.SlotAccount(elapsed),
		GSPolls:    r.sched.GSPolls(),
		BEPolls:    r.sched.BEPolls(),
		Skipped:    r.sched.SkippedPolls(),
		Admitted:   r.ctrl.Flows(),
		Admissions: r.admissions,
	}
	for _, id := range pn.Flows() {
		cfg, _ := pn.FlowConfig(id)
		delay, _ := pn.FlowDelayStats(id)
		delivered, _ := pn.FlowDelivered(id)
		offered, _ := pn.FlowOffered(id)
		lost, _ := pn.FlowLost(id)
		fr := FlowResult{
			ID:          id,
			Slave:       cfg.Slave,
			Dir:         cfg.Dir,
			Class:       cfg.Class,
			Offered:     offered.Packets(),
			Delivered:   delivered.Packets(),
			Lost:        lost.Packets(),
			Kbps:        delivered.Kbps(elapsed),
			DelayMax:    delay.Max(),
			DelayMean:   delay.Mean(),
			DelayP99:    delay.Quantile(0.99),
			DelayJitter: delay.StdDev(),
			Delay:       delay,
		}
		if bound, ok := r.bounds[id]; ok {
			fr.Bound = bound
			fr.Rate = r.rates[id]
		}
		res.Flows = append(res.Flows, fr)
	}
	for _, slave := range pn.Slaves() {
		res.SlaveKbps[slave] = pn.SlaveThroughputKbps(slave, elapsed)
		if down, up, ok := pn.SCOMeters(slave); ok {
			res.SCOKbps[slave] = down.Kbps(elapsed) + up.Kbps(elapsed)
		}
	}
	return res
}
