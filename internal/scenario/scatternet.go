package scenario

import (
	"fmt"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
	"bluegs/internal/radio"
)

// PiconetSpec describes one piconet of a scatternet: its name (the
// address timeline events target) and its static flow and voice-link
// sets. Spec-wide knobs — delay target, poller, allowed types, radio,
// ARQ — apply to every piconet; what varies per piconet is the load.
type PiconetSpec struct {
	// Name addresses the piconet from the timeline (add_gs etc. target
	// it) and labels its rows in reports. Names must be unique; an empty
	// name defaults to "pn<index+1>".
	Name string
	// GS, BE and SCO are the piconet's static sets, with the same
	// semantics as the Spec-level fields of a single-piconet run. Flow
	// ids must be unique within the piconet (two piconets may reuse an
	// id: flows are addressed as (piconet, id)).
	GS  []GSFlow
	BE  []BEFlow
	SCO []SCOLinkSpec
}

// InterferenceSpec couples the piconets of a scatternet through the
// shared 79-channel FH spectrum: every transmitted packet collides with
// probability 1 − ∏(1 − q_j/Channels) over the other piconets, where q_j
// is 1 for a piconet on air at that instant and its measured utilization
// otherwise (see radio.Medium). The zero value disables the coupling —
// piconets then share only the kernel clock. The v2 file form is the
// codec's "interference" block.
type InterferenceSpec struct {
	// Enabled switches the coupling on.
	Enabled bool
	// Channels is the hop-set size (default 79).
	Channels int
	// Window is the minimum elapsed time utilization is estimated over
	// (default 250ms).
	Window time.Duration
}

// withDefaults pins the parameters: enabled specs get the standard
// hop-set and window, disabled specs zero out so equivalent specs share
// one canonical rendering.
func (i InterferenceSpec) withDefaults() InterferenceSpec {
	if !i.Enabled {
		return InterferenceSpec{}
	}
	if i.Channels <= 0 {
		i.Channels = radio.DefaultFHChannels
	}
	if i.Window <= 0 {
		i.Window = radio.DefaultUtilizationWindow
	}
	return i
}

// scatternet reports whether the spec uses the explicit multi-piconet
// form.
func (s Spec) scatternet() bool { return len(s.Piconets) > 0 }

// piconetSpecs returns the effective piconet list: the explicit Piconets
// array, or the flat flow fields wrapped as the single unnamed piconet
// (the degenerate case every pre-scatternet spec is).
func (s Spec) piconetSpecs() []PiconetSpec {
	if s.scatternet() {
		return s.Piconets
	}
	return []PiconetSpec{{GS: s.GS, BE: s.BE, SCO: s.SCO}}
}

// defaultPiconetName is the piconet a timeline event with an empty
// Piconet field targets: the first piconet ("" for flat specs).
func (s Spec) defaultPiconetName() string {
	if s.scatternet() {
		return s.Piconets[0].Name
	}
	return ""
}

// withPiconetNames fills empty piconet names positionally ("pn<i+1>"),
// on a copy when anything changes. WithDefaults, Marshal and the
// validators share it, so an unnamed piconet means the same piconet
// everywhere — Run, Canonical and the file form can never disagree.
func withPiconetNames(pns []PiconetSpec) []PiconetSpec {
	for i, ps := range pns {
		if ps.Name != "" {
			continue
		}
		out := append([]PiconetSpec(nil), pns...)
		for j := i; j < len(out); j++ {
			if out[j].Name == "" {
				out[j].Name = fmt.Sprintf("pn%d", j+1)
			}
		}
		return out
	}
	return pns
}

// validateScatternet checks the multi-piconet form: flat flow fields must
// stay empty, names (after positional defaulting) must be unique, and
// every piconet's flow ids unique.
func (s Spec) validateScatternet() error {
	if !s.scatternet() {
		return nil
	}
	if len(s.GS)+len(s.BE)+len(s.SCO) > 0 {
		return fmt.Errorf("%w: flat GS/BE/SCO fields must be empty when Piconets is set", ErrBadSpec)
	}
	pns := withPiconetNames(s.Piconets)
	names := make(map[string]bool, len(pns))
	for _, ps := range pns {
		if names[ps.Name] {
			return fmt.Errorf("%w: duplicate piconet name %q", ErrBadSpec, ps.Name)
		}
		names[ps.Name] = true
		if err := ps.validateFlows(); err != nil {
			return fmt.Errorf("piconet %q: %w", ps.Name, err)
		}
	}
	return nil
}

// validateFlows checks flow-id uniqueness within one piconet's static
// sets.
func (ps PiconetSpec) validateFlows() error {
	seen := make(map[piconet.FlowID]bool, len(ps.GS)+len(ps.BE))
	check := func(id piconet.FlowID) error {
		if id == piconet.None {
			return fmt.Errorf("%w: zero flow id", ErrBadSpec)
		}
		if seen[id] {
			return fmt.Errorf("%w: duplicate flow id %d", ErrBadSpec, id)
		}
		seen[id] = true
		return nil
	}
	for _, g := range ps.GS {
		if err := check(g.ID); err != nil {
			return err
		}
	}
	for _, b := range ps.BE {
		if err := check(b.ID); err != nil {
			return err
		}
	}
	return nil
}

// flowIDSet collects the piconet's static flow ids (the base set
// timeline validation extends with the additions targeting it).
func (ps PiconetSpec) flowIDSet() map[piconet.FlowID]bool {
	flows := make(map[piconet.FlowID]bool, len(ps.GS)+len(ps.BE))
	for _, g := range ps.GS {
		flows[g.ID] = true
	}
	for _, b := range ps.BE {
		flows[b.ID] = true
	}
	return flows
}

// flowCount is the number of static flows across all piconets.
func (s Spec) flowCount() int {
	n := 0
	for _, ps := range s.piconetSpecs() {
		n += len(ps.GS) + len(ps.BE)
	}
	return n
}

// PiconetResult is one piconet's share of a scatternet run: the same
// measurements a single-piconet Result carries, scoped to the piconet.
type PiconetResult struct {
	// Name is the piconet's name ("" for flat single-piconet specs).
	Name string
	// Removed reports the piconet left the scatternet mid-run (its
	// statistics are final as of the removal).
	Removed bool
	// Crashed reports the piconet's master crashed per the fault plan:
	// statistics are final as of the crash, and its flows were orphaned
	// rather than retired.
	Crashed bool
	Flows   []FlowResult
	// SlaveKbps and SCOKbps are per-slave delivered throughputs within
	// this piconet.
	SlaveKbps map[piconet.SlaveID]float64
	SCOKbps   map[piconet.SlaveID]float64
	Slots     piconet.SlotAccount
	GSPolls   uint64
	BEPolls   uint64
	Skipped   uint64
	// Admitted is the piconet's admission plan at the end of the run;
	// Admissions its slice of the online admission log.
	Admitted   []*admission.PlannedFlow
	Admissions []AdmissionRecord
	// Utilization is the piconet's measured channel occupancy at the end
	// of the run (set only when interference is enabled).
	Utilization float64
}

// BoundViolations returns the piconet's GS flows whose measured maximum
// delay exceeded the exported bound.
func (p *PiconetResult) BoundViolations() []FlowResult {
	var out []FlowResult
	for _, f := range p.Flows {
		if f.Class == piconet.Guaranteed && f.DelayMax > f.Bound {
			out = append(out, f)
		}
	}
	return out
}

// ScatternetConfig parameterises the scatternet preset generator. The
// zero value gives the registered "scatternet" preset: four co-located
// piconets, each with two 64 kbps GS voice flows and a 60 kbps
// best-effort pair, ARQ on, FH co-channel interference enabled.
type ScatternetConfig struct {
	// Piconets is the piconet count (default 4).
	Piconets int
	// GSPerPiconet is the number of GS voice flows per piconet, placed
	// at slaves 1.. with alternating directions (default 2, max 5).
	GSPerPiconet int
	// BEKbps is the per-direction best-effort load at each piconet's
	// slave 6 (default 60; negative disables the BE pair).
	BEKbps float64
	// DelayTarget is the bound every GS flow requests (default 40ms).
	DelayTarget time.Duration
	// Duration is the simulated horizon (default 30s).
	Duration time.Duration
	// NoInterference runs the piconets uncoupled (shared clock only),
	// the control case of the interference study.
	NoInterference bool
	// NoARQ disables retransmission: collisions then surface as losses
	// instead of delay (the study wants delay erosion, so ARQ defaults
	// on).
	NoARQ bool
	// InterferenceAware switches the interference-aware admission
	// derating on (Spec.InterferenceAwareAdmission): bounds are promised
	// against the derated service rate instead of the ideal channel.
	InterferenceAware bool
	// Derate statically overrides the derating estimator
	// (Spec.AdmissionDerate); zero uses the medium estimate.
	Derate float64
	// OnlineGS adds this many extra GS voice flows per piconet arriving
	// through the paper's online admission test (timeline add-gs events,
	// staggered from 1s at the free slaves above the static set). They
	// are the accept-ratio probe of the E10 admission study: an ideal
	// admission accepts them and erodes everyone's bounds; a derated one
	// refuses what the scatternet cannot carry. Clamped to the free
	// non-BE slaves (at most 5 − GSPerPiconet + 1, using slave 7).
	OnlineGS int
}

func (c ScatternetConfig) withDefaults() ScatternetConfig {
	if c.Piconets < 1 {
		c.Piconets = 4
	}
	if c.GSPerPiconet < 1 {
		c.GSPerPiconet = 2
	}
	if c.GSPerPiconet > 5 {
		c.GSPerPiconet = 5
	}
	if c.BEKbps == 0 {
		c.BEKbps = 60
	}
	if c.DelayTarget <= 0 {
		c.DelayTarget = 40 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.OnlineGS > len(c.onlineSlaves()) {
		c.OnlineGS = len(c.onlineSlaves())
	}
	if c.OnlineGS < 0 {
		c.OnlineGS = 0
	}
	return c
}

// onlineSlaves lists the slaves free for online GS arrivals: above the
// static GS set, skipping the BE pair's slave 6, up to slave 7.
func (c ScatternetConfig) onlineSlaves() []piconet.SlaveID {
	var out []piconet.SlaveID
	for s := c.GSPerPiconet + 1; s <= 7; s++ {
		if s == 6 {
			continue
		}
		out = append(out, piconet.SlaveID(s))
	}
	return out
}

// Scatternet builds N co-located identical piconets named "pn1".."pnN",
// each carrying the paper's voice-style GS flows plus a best-effort
// floor, coupled through the FH co-channel interference model. It is the
// workload of the E9 scatternet study: with one piconet the paper's
// delay guarantees hold exactly; as piconets are added, hop collisions
// consume the slack the admission test reasoned with, and the per-piconet
// bounds erode.
func Scatternet(cfg ScatternetConfig) Spec {
	cfg = cfg.withDefaults()
	var pns []PiconetSpec
	for i := 0; i < cfg.Piconets; i++ {
		ps := PiconetSpec{Name: fmt.Sprintf("pn%d", i+1)}
		for k := 0; k < cfg.GSPerPiconet; k++ {
			dir := piconet.Up
			if k%2 == 1 {
				dir = piconet.Down
			}
			ps.GS = append(ps.GS, GSFlow{
				ID:       piconet.FlowID(k + 1),
				Slave:    piconet.SlaveID(k + 1),
				Dir:      dir,
				Interval: 20 * time.Millisecond,
				MinSize:  144,
				MaxSize:  176,
				// Stagger sources within and across piconets so the
				// scatternet does not transmit in lockstep.
				Phase: time.Duration(k)*5*time.Millisecond + time.Duration(i)*time.Millisecond,
			})
		}
		if cfg.BEKbps > 0 {
			base := piconet.FlowID(100)
			ps.BE = append(ps.BE,
				BEFlow{ID: base, Slave: 6, Dir: piconet.Down, RateKbps: cfg.BEKbps, PacketSize: 176},
				BEFlow{ID: base + 1, Slave: 6, Dir: piconet.Up, RateKbps: cfg.BEKbps, PacketSize: 176},
			)
		}
		pns = append(pns, ps)
	}
	// Online arrivals: OnlineGS extra voice flows per piconet negotiate
	// admission mid-run, staggered so no two arrivals share an instant.
	var timeline []TimelineEvent
	if cfg.OnlineGS > 0 {
		slaves := cfg.onlineSlaves()
		for k := 0; k < cfg.OnlineGS; k++ {
			dir := piconet.Up
			if k%2 == 1 {
				dir = piconet.Down
			}
			for i := 0; i < cfg.Piconets; i++ {
				at := time.Second + time.Duration(k*cfg.Piconets+i)*100*time.Millisecond
				timeline = append(timeline, AddGSAt(at, GSFlow{
					ID:       piconet.FlowID(10 + k),
					Slave:    slaves[k],
					Dir:      dir,
					Interval: 20 * time.Millisecond,
					MinSize:  144,
					MaxSize:  176,
				}).For(fmt.Sprintf("pn%d", i+1)))
			}
		}
	}
	name := fmt.Sprintf("scatternet-%dpn", cfg.Piconets)
	if cfg.InterferenceAware {
		name += "-derated"
	}
	return Spec{
		Name:                       name,
		Piconets:                   pns,
		DelayTarget:                cfg.DelayTarget,
		Allowed:                    baseband.PaperTypes,
		Duration:                   cfg.Duration,
		Seed:                       1,
		ARQ:                        !cfg.NoARQ,
		Interference:               InterferenceSpec{Enabled: !cfg.NoInterference},
		InterferenceAwareAdmission: cfg.InterferenceAware,
		AdmissionDerate:            cfg.Derate,
		Timeline:                   timeline,
	}
}
