package scenario

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"bluegs/internal/piconet"
)

// TestScatternetSinglePiconetEquivalence: wrapping the paper's flat spec
// into a one-piconet scatternet (interference disabled) must produce a
// distinct fingerprint — the result shape differs (piconet-addressed
// flows) — but metric-identical results: same kernel, same draws, same
// numbers.
func TestScatternetSinglePiconetEquivalence(t *testing.T) {
	flat := Paper(40 * time.Millisecond)
	flat.Duration = 10 * time.Second

	wrapped := flat
	wrapped.GS, wrapped.BE, wrapped.SCO = nil, nil, nil
	wrapped.Piconets = []PiconetSpec{{Name: "pn1", GS: flat.GS, BE: flat.BE, SCO: flat.SCO}}

	if flat.Fingerprint() == wrapped.Fingerprint() {
		t.Fatal("flat and scatternet forms share a fingerprint")
	}

	fres, err := Run(flat)
	if err != nil {
		t.Fatalf("flat run: %v", err)
	}
	wres, err := Run(wrapped)
	if err != nil {
		t.Fatalf("wrapped run: %v", err)
	}
	if len(fres.Piconets) != 1 || len(wres.Piconets) != 1 {
		t.Fatalf("piconet results: flat %d, wrapped %d (want 1 each)",
			len(fres.Piconets), len(wres.Piconets))
	}
	if fres.Events != wres.Events {
		t.Fatalf("kernel events differ: %d vs %d", fres.Events, wres.Events)
	}
	if len(fres.Flows) != len(wres.Flows) {
		t.Fatalf("flow counts differ: %d vs %d", len(fres.Flows), len(wres.Flows))
	}
	for i, ff := range fres.Flows {
		wf := wres.Flows[i]
		if ff.Piconet != "" || wf.Piconet != "pn1" {
			t.Fatalf("flow %d piconet labels: %q vs %q", ff.ID, ff.Piconet, wf.Piconet)
		}
		// Normalize the addressing label; everything else must match
		// exactly (the delay stats pointer aside).
		wf.Piconet = ff.Piconet
		ff.Delay, wf.Delay = nil, nil
		if ff != wf {
			t.Fatalf("flow %d differs:\nflat:    %+v\nwrapped: %+v", ff.ID, ff, wf)
		}
	}
	if fres.Slots != wres.Slots {
		t.Fatalf("slot accounts differ: %v vs %v", fres.Slots, wres.Slots)
	}
	if fres.GSPolls != wres.GSPolls || fres.BEPolls != wres.BEPolls || fres.Skipped != wres.Skipped {
		t.Fatal("poll counters differ")
	}
	for slave, kbps := range fres.SlaveKbps {
		if wres.SlaveKbps[slave] != kbps {
			t.Fatalf("slave %d kbps differ: %g vs %g", slave, kbps, wres.SlaveKbps[slave])
		}
	}
}

// TestScatternetValidation covers the spec-form errors.
func TestScatternetValidation(t *testing.T) {
	base := func() Spec {
		return Spec{Piconets: []PiconetSpec{
			{Name: "a", GS: []GSFlow{{ID: 1, Slave: 1, Dir: piconet.Up, Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176}}},
			{Name: "b", BE: []BEFlow{{ID: 1, Slave: 1, Dir: piconet.Up, RateKbps: 30, PacketSize: 176}}},
		}, Duration: time.Second}
	}
	if _, err := Run(base()); err != nil {
		t.Fatalf("valid scatternet rejected: %v", err)
	}

	s := base()
	s.BE = []BEFlow{{ID: 9, Slave: 2, Dir: piconet.Up, RateKbps: 10, PacketSize: 176}}
	if _, err := Run(s); err == nil {
		t.Fatal("flat fields alongside Piconets accepted")
	}

	s = base()
	s.Piconets[1].Name = "a"
	if _, err := Run(s); err == nil {
		t.Fatal("duplicate piconet names accepted")
	}

	s = base()
	s.Piconets[0].GS = append(s.Piconets[0].GS, s.Piconets[0].GS[0])
	if _, err := Run(s); err == nil {
		t.Fatal("duplicate flow id within a piconet accepted")
	}

	s = base()
	s.Timeline = []TimelineEvent{AddBEAt(time.Second/2, BEFlow{ID: 50, Slave: 3, Dir: piconet.Up, RateKbps: 10, PacketSize: 176}).For("nope")}
	if _, err := Run(s); err == nil {
		t.Fatal("timeline targeting an unknown piconet accepted")
	}

	// Reusing a flow id in a different piconet is fine: flows are
	// addressed as (piconet, id).
	s = base()
	s.Timeline = []TimelineEvent{AddBEAt(time.Second/2, BEFlow{ID: 1, Slave: 3, Dir: piconet.Up, RateKbps: 10, PacketSize: 176}).For("a")}
	if _, err := Run(s); err == nil {
		t.Fatal("duplicate flow id within the targeted piconet accepted")
	}
	s.Timeline[0].AddBE.ID = 2
	if _, err := Run(s); err != nil {
		t.Fatalf("fresh flow id rejected: %v", err)
	}
}

// TestScatternetUnnamedPiconetsDefault: empty piconet names default
// positionally ("pn<i+1>") and Run, Canonical and the file form must all
// resolve an unnamed piconet to the same name — otherwise a spec could
// fingerprint like its named twin yet fail to run.
func TestScatternetUnnamedPiconetsDefault(t *testing.T) {
	unnamed := Spec{
		Duration: 2 * time.Second,
		Piconets: []PiconetSpec{
			{BE: []BEFlow{{ID: 1, Slave: 1, Dir: piconet.Up, RateKbps: 30, PacketSize: 176}}},
			{BE: []BEFlow{{ID: 1, Slave: 1, Dir: piconet.Up, RateKbps: 30, PacketSize: 176}}},
		},
		Timeline: []TimelineEvent{
			AddBEAt(time.Second, BEFlow{ID: 2, Slave: 2, Dir: piconet.Up, RateKbps: 10, PacketSize: 176}).For("pn2"),
		},
	}
	named := unnamed
	named.Piconets = append([]PiconetSpec(nil), unnamed.Piconets...)
	named.Piconets[0].Name, named.Piconets[1].Name = "pn1", "pn2"

	if unnamed.Fingerprint() != named.Fingerprint() {
		t.Fatal("unnamed piconets fingerprint differently from their defaulted names")
	}
	res, err := Run(unnamed)
	if err != nil {
		t.Fatalf("unnamed scatternet spec does not run: %v", err)
	}
	if _, ok := res.PiconetByName("pn2"); !ok {
		t.Fatalf("defaulted name missing from results: %+v", res.Piconets)
	}
	data, err := Marshal(unnamed)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if back.Piconets[0].Name != "pn1" || back.Piconets[1].Name != "pn2" {
		t.Fatalf("file form lost the defaulted names: %+v", back.Piconets)
	}
	if back.Fingerprint() != unnamed.Fingerprint() {
		t.Fatal("file round trip changed the fingerprint")
	}
}

// TestScatternetRejectionRecordsCarrySubject: a flow event aimed at a
// removed piconet must log the flow and slave it was about.
func TestScatternetRejectionRecordsCarrySubject(t *testing.T) {
	spec := Spec{
		Duration: 2 * time.Second,
		Piconets: []PiconetSpec{
			{Name: "a", BE: []BEFlow{{ID: 1, Slave: 1, Dir: piconet.Up, RateKbps: 30, PacketSize: 176}}},
			{Name: "b", BE: []BEFlow{{ID: 1, Slave: 1, Dir: piconet.Up, RateKbps: 30, PacketSize: 176}}},
		},
		Timeline: []TimelineEvent{
			RemovePiconetAt(500*time.Millisecond, "b"),
			AddGSAt(time.Second, GSFlow{ID: 42, Slave: 3, Dir: piconet.Up,
				Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176}).For("b"),
		},
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rec := res.Admissions[len(res.Admissions)-1]
	if rec.Accepted || rec.Op != OpAddGS || rec.Flow != 42 || rec.Slave != 3 || rec.Piconet != "b" {
		t.Fatalf("rejection record lost its subject: %+v", rec)
	}
}

// TestScatternetPiconetChurn drives add_piconet/remove_piconet end to
// end: the added piconet carries traffic from its arrival, the removed
// one freezes, and post-removal events land as rejection records.
func TestScatternetPiconetChurn(t *testing.T) {
	mk := func() PiconetSpec {
		return PiconetSpec{Name: "late", GS: []GSFlow{
			{ID: 1, Slave: 1, Dir: piconet.Up, Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176},
		}}
	}
	spec := Spec{
		Duration: 4 * time.Second,
		Piconets: []PiconetSpec{
			{Name: "base", BE: []BEFlow{{ID: 1, Slave: 1, Dir: piconet.Up, RateKbps: 60, PacketSize: 176}}},
		},
		Timeline: []TimelineEvent{
			AddPiconetAt(1*time.Second, mk()),
			AddBEAt(2*time.Second, BEFlow{ID: 10, Slave: 2, Dir: piconet.Down, RateKbps: 20, PacketSize: 176}).For("late"),
			RemovePiconetAt(3*time.Second, "late"),
			AddBEAt(3500*time.Millisecond, BEFlow{ID: 11, Slave: 3, Dir: piconet.Up, RateKbps: 20, PacketSize: 176}).For("late"),
		},
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.Piconets) != 2 {
		t.Fatalf("%d piconet results, want 2", len(res.Piconets))
	}
	late, ok := res.PiconetByName("late")
	if !ok {
		t.Fatal("late piconet missing from results")
	}
	if !late.Removed {
		t.Fatal("late piconet not marked removed")
	}
	// ~2 s of service (1s..3s) at one packet per 20 ms: ≈100 GS packets.
	gs := late.Flows[0]
	if gs.Delivered < 80 || gs.Delivered > 110 {
		t.Fatalf("late GS delivered %d packets, want ≈100 (2 s of service)", gs.Delivered)
	}
	// The BE flow added at 2 s must have run for ~1 s.
	be, found := 0, false
	for _, f := range late.Flows {
		if f.ID == 10 {
			found = true
			be = int(f.Delivered)
		}
	}
	if !found || be == 0 {
		t.Fatalf("timeline BE flow on the added piconet delivered nothing (found=%v)", found)
	}
	// Event log: add accepted, adds accepted, remove accepted, post-
	// removal add rejected.
	var outcomes []string
	for _, a := range res.Admissions {
		outcome := "reject"
		if a.Accepted {
			outcome = "accept"
		}
		outcomes = append(outcomes, a.Op+":"+outcome)
	}
	want := []string{
		OpAddPiconet + ":accept",
		OpAddBE + ":accept",
		OpRemovePiconet + ":accept",
		OpAddBE + ":reject",
	}
	if len(outcomes) != len(want) {
		t.Fatalf("admission log %v, want %v", outcomes, want)
	}
	for i := range want {
		if outcomes[i] != want[i] {
			t.Fatalf("admission log %v, want %v", outcomes, want)
		}
	}
	if rec := res.Admissions[3]; rec.Reason != "piconet removed" || rec.Piconet != "late" {
		t.Fatalf("post-removal rejection record: %+v", rec)
	}
	// Per-piconet log slices carry their own records, including the
	// post-removal rejection addressed to them.
	if len(late.Admissions) != 4 {
		t.Fatalf("late piconet log has %d records, want 4 (%+v)", len(late.Admissions), late.Admissions)
	}
}

// TestScatternetInterferenceCouples: the same two-piconet workload must
// see strictly more GS delay (and some retransmissions) with the FH
// coupling than without it, and a one-piconet run with interference
// enabled must match the uncoupled run exactly (no spurious RNG draws).
func TestScatternetInterferenceCouples(t *testing.T) {
	build := func(n int, interference bool) Spec {
		return Scatternet(ScatternetConfig{
			Piconets:       n,
			BEKbps:         60,
			Duration:       5 * time.Second,
			NoInterference: !interference,
		})
	}
	quiet, err := Run(build(2, false))
	if err != nil {
		t.Fatalf("uncoupled: %v", err)
	}
	loud, err := Run(build(2, true))
	if err != nil {
		t.Fatalf("coupled: %v", err)
	}
	if quiet.Slots.Retransmit != 0 {
		t.Fatalf("uncoupled run retransmitted %d slots", quiet.Slots.Retransmit)
	}
	if loud.Slots.Retransmit == 0 {
		t.Fatal("coupled run saw no collisions at all")
	}
	if len(quiet.BoundViolations()) != 0 {
		t.Fatalf("uncoupled scatternet violated bounds: %+v", quiet.BoundViolations())
	}
	worst := func(r *Result) time.Duration {
		var w time.Duration
		for _, f := range r.Flows {
			if f.Class == piconet.Guaranteed && f.DelayMax > w {
				w = f.DelayMax
			}
		}
		return w
	}
	if worst(loud) <= worst(quiet) {
		t.Fatalf("interference did not grow the worst GS delay: %v vs %v", worst(loud), worst(quiet))
	}

	// One piconet: the interference wrapper must be RNG-transparent.
	solo, err := Run(build(1, true))
	if err != nil {
		t.Fatalf("solo coupled: %v", err)
	}
	soloQuiet, err := Run(build(1, false))
	if err != nil {
		t.Fatalf("solo uncoupled: %v", err)
	}
	if solo.Events != soloQuiet.Events {
		t.Fatalf("one-piconet interference changed the event count: %d vs %d", solo.Events, soloQuiet.Events)
	}
	for i := range solo.Flows {
		a, b := solo.Flows[i], soloQuiet.Flows[i]
		a.Delay, b.Delay = nil, nil
		if a != b {
			t.Fatalf("one-piconet interference changed flow %d: %+v vs %+v", a.ID, a, b)
		}
	}
	if solo.Piconets[0].Utilization == 0 {
		t.Fatal("interference-enabled run reports no utilization")
	}
}

// TestBatchTrafficDeterministicAndClose: batched up-flow generation is a
// different (but deterministic) draw order, so metrics shift slightly —
// throughput must stay equivalent while the kernel executes fewer
// events.
func TestBatchTrafficDeterministicAndClose(t *testing.T) {
	base := Paper(40 * time.Millisecond)
	base.Duration = 10 * time.Second

	batched := base
	batched.BatchTraffic = true
	if base.Fingerprint() == batched.Fingerprint() {
		t.Fatal("batching does not enter the fingerprint")
	}

	ref, err := Run(base)
	if err != nil {
		t.Fatalf("unbatched: %v", err)
	}
	got1, err := Run(batched)
	if err != nil {
		t.Fatalf("batched: %v", err)
	}
	got2, err := Run(batched)
	if err != nil {
		t.Fatalf("batched rerun: %v", err)
	}
	if got1.Events != got2.Events || got1.Report().String() != got2.Report().String() {
		t.Fatal("batched runs are not deterministic")
	}
	if got1.Events >= ref.Events {
		t.Fatalf("batching did not reduce kernel events: %d vs %d", got1.Events, ref.Events)
	}
	for _, class := range []piconet.Class{piconet.Guaranteed, piconet.BestEffort} {
		a, b := ref.TotalKbps(class), got1.TotalKbps(class)
		if b < a*0.99 || b > a*1.01 {
			t.Fatalf("%v throughput drifted: %.2f vs %.2f kbps", class, a, b)
		}
	}
	if v := got1.BoundViolations(); len(v) != 0 {
		t.Fatalf("batched run violated bounds: %+v", v)
	}
}

// TestScatternetCodecRoundTrip is the multi-piconet codec property test:
// randomized scatternet specs — piconet arrays, interference parameters,
// piconet-addressed timelines with piconet churn — must round-trip
// through Marshal/Unmarshal fingerprint-identically.
func TestScatternetCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dirs := []piconet.Direction{piconet.Up, piconet.Down}
	for round := 0; round < 100; round++ {
		nPN := 1 + rng.Intn(4)
		var names []string
		spec := Spec{
			Name:        "fuzz-scatternet",
			Duration:    time.Duration(1+rng.Intn(20)) * time.Second,
			Seed:        rng.Int63n(1 << 30),
			DelayTarget: time.Duration(20+rng.Intn(40)) * time.Millisecond,
			ARQ:         rng.Intn(2) == 0,
		}
		if rng.Intn(2) == 0 {
			spec.Interference = InterferenceSpec{
				Enabled:  true,
				Channels: 20 + rng.Intn(100),
			}
		}
		spec.BatchTraffic = rng.Intn(2) == 0
		for i := 0; i < nPN; i++ {
			ps := PiconetSpec{Name: string(rune('a' + i))}
			names = append(names, ps.Name)
			id := piconet.FlowID(1)
			for k := 0; k <= rng.Intn(3); k++ {
				ps.GS = append(ps.GS, GSFlow{
					ID: id, Slave: piconet.SlaveID(1 + k), Dir: dirs[rng.Intn(2)],
					Interval: time.Duration(10+rng.Intn(30)) * time.Millisecond,
					MinSize:  100 + rng.Intn(50), MaxSize: 150 + rng.Intn(50),
					Phase: time.Duration(rng.Intn(10)) * time.Millisecond,
				})
				id++
			}
			for k := 0; k <= rng.Intn(2); k++ {
				ps.BE = append(ps.BE, BEFlow{
					ID: id, Slave: piconet.SlaveID(5 + k), Dir: dirs[rng.Intn(2)],
					RateKbps: 10 + 50*rng.Float64(), PacketSize: 100 + rng.Intn(100),
				})
				id++
			}
			spec.Piconets = append(spec.Piconets, ps)
		}
		nextID := piconet.FlowID(100)
		for e := 0; e < rng.Intn(4); e++ {
			at := time.Duration(rng.Int63n(int64(spec.Duration)))
			target := names[rng.Intn(len(names))]
			switch rng.Intn(4) {
			case 0:
				spec.Timeline = append(spec.Timeline, AddGSAt(at, GSFlow{
					ID: nextID, Slave: 7, Dir: dirs[rng.Intn(2)],
					Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176,
				}).For(target))
				nextID++
			case 1:
				spec.Timeline = append(spec.Timeline, AddBEAt(at, BEFlow{
					ID: nextID, Slave: 6, Dir: dirs[rng.Intn(2)],
					RateKbps: 20, PacketSize: 176,
				}).For(target))
				nextID++
			case 2:
				late := fmt.Sprintf("late-%d-%d", round, e)
				spec.Timeline = append(spec.Timeline, AddPiconetAt(at, PiconetSpec{
					Name: late,
					BE:   []BEFlow{{ID: 1, Slave: 1, Dir: piconet.Up, RateKbps: 15, PacketSize: 176}},
				}))
				names = append(names, late)
			case 3:
				spec.Timeline = append(spec.Timeline, RemovePiconetAt(at, names[rng.Intn(len(names))]))
			}
		}

		data, err := Marshal(spec)
		if err != nil {
			t.Fatalf("round %d: Marshal: %v\nspec: %+v", round, err, spec)
		}
		back, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("round %d: Unmarshal: %v\n%s", round, err, data)
		}
		if spec.Fingerprint() != back.Fingerprint() {
			t.Fatalf("round %d: fingerprint drift\n--- spec ---\n%s\n--- back ---\n%s",
				round, spec.Canonical(), back.Canonical())
		}
	}
}

