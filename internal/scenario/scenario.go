// Package scenario wires complete simulation scenarios: flow sets, traffic
// sources, admission, scheduler and measurement. It provides the paper's
// §4.1 evaluation setup (Fig. 4) as a preset and a generic runner used by
// the experiment harness, the command-line tools and the examples.
//
// A Spec is pure data: every field — flows, poller and radio selection
// (by name plus parameters), SCO links and the Timeline of mid-run
// changes — is serializable (see Marshal/Unmarshal) and enters the spec's
// canonical fingerprint. Runtime-only attachments (a live Tracer, a
// pre-seeded radio model instance) travel separately through Hooks and
// RunWith. Named specs register into a process-wide registry (Register/
// Lookup/Names) that the presets populate.
//
// Scatternet specs may additionally declare Bridges — devices
// time-sharing several piconets on a periodic residency schedule — and
// Routes, multi-hop guaranteed flows store-and-forwarded across those
// bridges. A route's end-to-end delay budget is split across its hops
// and each hop is admitted (atomically, all-or-nothing) against its
// residency-derated share; end-to-end measurements land in
// Result.Routes. See internal/README.md for the full bridge model.
package scenario

import (
	"errors"
	"fmt"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/core"
	"bluegs/internal/faults"
	"bluegs/internal/piconet"
	"bluegs/internal/poller"
	"bluegs/internal/radio"
	"bluegs/internal/stats"
	"bluegs/internal/tspec"
)

// Errors returned by the runner.
var (
	ErrBadSpec = errors.New("scenario: invalid specification")
)

// GSFlow describes one Guaranteed Service flow and its CBR source.
type GSFlow struct {
	ID    piconet.FlowID
	Slave piconet.SlaveID
	Dir   piconet.Direction
	// Interval is the source's packet spacing; MinSize/MaxSize its
	// uniform packet size support. The TSpec is derived per §4.1.
	Interval time.Duration
	MinSize  int
	MaxSize  int
	// Phase offsets the source start (relative to the flow's
	// installation: run start for static flows, the timeline event for
	// flows added mid-run).
	Phase time.Duration
	// Allowed overrides the spec-wide baseband type set when non-empty.
	Allowed baseband.TypeSet
}

// Spec returns the flow's token bucket specification.
func (g GSFlow) Spec() tspec.TSpec {
	return tspec.CBR(g.Interval, g.MinSize, g.MaxSize)
}

// BEFlow describes one best-effort flow and its CBR source.
type BEFlow struct {
	ID    piconet.FlowID
	Slave piconet.SlaveID
	Dir   piconet.Direction
	// RateKbps is the offered load; PacketSize the fixed packet size.
	RateKbps   float64
	PacketSize int
	Phase      time.Duration
	// Allowed overrides the spec-wide baseband type set when non-empty
	// (e.g. DH1-only flows that fit between SCO reservations).
	Allowed baseband.TypeSet
}

// SCOLinkSpec reserves a synchronous voice channel to a slave.
type SCOLinkSpec struct {
	Slave piconet.SlaveID
	Type  baseband.PacketType
}

// BEPollerKind names a best-effort poller for specs.
type BEPollerKind string

// Best-effort poller kinds.
const (
	BEPFP        BEPollerKind = "pfp"
	BERoundRobin BEPollerKind = "round-robin"
	BEExhaustive BEPollerKind = "exhaustive-rr"
	BEFEP        BEPollerKind = "fep"
	BEEDC        BEPollerKind = "edc"
	BEDemand     BEPollerKind = "demand"
	BEHOL        BEPollerKind = "hol-priority"
)

// PollerParams carries the per-kind tuning parameters of a best-effort
// poller in declarative form, so poller construction has a single path
// shared by the runner and the JSON codec.
type PollerParams struct {
	// PFPThreshold overrides the PFP active-prediction threshold when
	// positive (meaningful with the PFP poller only).
	PFPThreshold float64 `json:"pfp_threshold,omitempty"`
}

// NewBEPoller constructs a poller by kind and parameters (empty kind
// means PFP).
func NewBEPoller(kind BEPollerKind, params PollerParams) (poller.Poller, error) {
	switch kind {
	case "", BEPFP:
		if params.PFPThreshold > 0 {
			return poller.NewPFP(nil, poller.WithActiveThreshold(params.PFPThreshold)), nil
		}
		return poller.NewPFP(nil), nil
	case BERoundRobin:
		return &poller.RoundRobin{}, nil
	case BEExhaustive:
		return &poller.Exhaustive{}, nil
	case BEFEP:
		return &poller.FEP{}, nil
	case BEEDC:
		return poller.NewEDC(0, 0), nil
	case BEDemand:
		return poller.NewDemand(0), nil
	case BEHOL:
		return poller.NewHOL(nil), nil
	default:
		return nil, fmt.Errorf("%w: unknown BE poller %q", ErrBadSpec, kind)
	}
}

// Spec is a complete scenario specification. It is pure data: runtime
// observers attach through Hooks (see RunWith), and the radio model is
// named declaratively so every run constructs a fresh instance.
type Spec struct {
	// Name labels reports.
	Name string
	// GS and BE are the static flow sets, installed before the run
	// starts. The Timeline adds and removes flows mid-run.
	GS []GSFlow
	BE []BEFlow
	// DelayTarget is the delay bound requested for every GS flow.
	// Static flows below the supportable minimum are clamped to the
	// tightest achievable bound (see admission.PlanForDelayBestEffort);
	// timeline flows whose target cannot be met are rejected instead
	// (the paper's online admission protocol).
	DelayTarget time.Duration
	// Mode is the planner mode (default VariableInterval).
	Mode core.Mode
	// Rules are the active §3.2 improvements (default AllImprovements;
	// meaningful in VariableInterval mode). Set RulesSet to use a zero
	// value.
	Rules    core.Improvements
	RulesSet bool
	// BEPoller selects the best-effort discipline (default PFP);
	// PFPThreshold is its PollerParams.PFPThreshold.
	BEPoller     BEPollerKind
	PFPThreshold float64
	// Allowed is the baseband type set for all flows (default DH1+DH3).
	Allowed baseband.TypeSet
	// Duration is the simulated time (default 30 s).
	Duration time.Duration
	// Seed drives all randomness (default 1).
	Seed int64
	// Radio names the channel model (default ideal); ARQ enables
	// retransmissions; LossRecovery additionally grants lost GS segments
	// recovery polls from the saved bandwidth (paper future work).
	Radio        RadioSpec
	ARQ          bool
	LossRecovery bool
	// WithoutPiggybacking disables pair detection in admission.
	WithoutPiggybacking bool
	// SCO lists synchronous links reserved from the start. With SCO
	// present, direction-aware admission is usually required so
	// single-direction GS exchanges fit between reservations.
	SCO []SCOLinkSpec
	// DirectionAware switches admission to direction-specific worst
	// exchange times (see admission.Config.DirectionAware).
	DirectionAware bool
	// Timeline schedules mid-run changes: GS flows arrive through the
	// paper's online admission test (and may be rejected), BE flows and
	// SCO links come and go, flows retire, and whole piconets join or
	// leave the scatternet. See TimelineEvent.
	Timeline []TimelineEvent
	// Piconets, when non-empty, switches the spec to scatternet form: N
	// co-located piconets run over one shared kernel clock, each with its
	// own scheduler and admission controller. The flat GS/BE/SCO fields
	// must then stay empty (they are the one-piconet degenerate case).
	// Spec-wide knobs (DelayTarget, Mode, BEPoller, Allowed, Radio, ARQ,
	// …) apply to every piconet.
	Piconets []PiconetSpec
	// Interference couples the piconets through FH co-channel collisions
	// (see InterferenceSpec). Without it piconets share only the clock.
	Interference InterferenceSpec
	// InterferenceAwareAdmission feeds the medium's expected collision
	// probability into every piconet's admission controller as a
	// service-rate derating (admission.Config.SuccessProb): delay bounds
	// are evaluated at the effective rate R·s the interference leaves,
	// reserved rates inflate by ~1/s, and the exported C term funds a
	// collision retry budget. Piconet churn re-derates the survivors
	// (add_piconet tightens, remove_piconet relaxes; refused re-derates
	// land in the admission log as rejected "rederate" records). Inert
	// without Interference.Enabled.
	InterferenceAwareAdmission bool
	// AdmissionDerate optionally overrides the estimator with a static
	// success probability in (0,1): admission then derates against this
	// fixed value regardless of the current piconet count, so churn
	// re-derates are no-ops and the initial plan absorbs the worst-case
	// co-location the value was chosen for. Meaningful only with
	// InterferenceAwareAdmission; zero means "use the medium estimate".
	AdmissionDerate float64
	// BatchTraffic batches traffic generation: sources whose generator
	// supports it (CBR, ON/OFF) pre-enqueue one burst of future-dated
	// arrivals per kernel event instead of one event per packet, bounded
	// to a short look-ahead window so arrival events stay on the kernel's
	// O(1) timing wheel. Down-flow arrivals notify the master's scheduler
	// at their arrival instants, so its arrival knowledge is unchanged.
	// Runs stay deterministic, but the RNG draw order differs from
	// unbatched runs, so the two modes are distinct simulations (and
	// fingerprint differently).
	BatchTraffic bool
	// Faults is the declarative fault plan: timed link outages per
	// (piconet, slave), slave departure/return events and master crashes
	// (see internal/faults). Outages force the affected link into 100%
	// loss without consuming RNG draws, so a fault-free spec is
	// byte-identical to a build without the fault layer. The zero plan
	// injects nothing.
	Faults faults.Plan
	// Recovery arms the self-healing machinery: a link supervision
	// timeout in every piconet engine plus the policy applied to flows
	// whose link is declared dead (suspend only, graceful degradation, or
	// make-before-break handoff). The zero value leaves supervision off —
	// faulted flows then keep their queues and silently violate.
	Recovery RecoverySpec
	// Bridges declares the scatternet's bridge nodes: slaves resident in
	// two or more piconets on a deterministic time-division residency
	// schedule (see BridgeSpec). Bridges lift the one-device-one-piconet
	// assumption: polls to a bridge outside its residency window fail like
	// a declared link outage (no RNG draws), and the scheduler plans
	// around the windows. Requires scatternet form.
	Bridges []BridgeSpec
	// Routes declares end-to-end Guaranteed Service flows that traverse
	// bridges: source piconet → bridge(s) → destination, with ONE
	// end-to-end delay target split across the hops at admission time and
	// each hop derated by its bridge's residency duty cycle (see
	// RouteSpec). Admission is atomic all-or-nothing across the hops.
	Routes []RouteSpec
	// KernelWorkers bounds the worker goroutines the sharded event
	// kernel multiplexes piconet groups onto (<= 0 means GOMAXPROCS,
	// capped at the shard count). It is a pure execution knob: the shard
	// partition, every shard's RNG stream and the interference-exchange
	// epochs are derived from the spec alone, so results are
	// byte-identical at any value. It is therefore excluded from the
	// canonical rendering (and the fingerprint/run-cache key), from the
	// v2 JSON codec, and from Result.Spec, which always reports 0.
	KernelWorkers int
}

// Paper returns the paper's Fig. 4 setup: a seven-slave piconet with four
// 64 kbps GS flows (flow 1 at S1, flows 2+3 oppositely directed at S2,
// flow 4 at S3) and eight BE flows (pairs at S4..S7 offering 41.6, 47.2,
// 52.8 and 58.4 kbps per direction), all using DH1+DH3 with best-fit
// segmentation. delayTarget is the delay bound requested for the GS flows
// (the paper's Fig. 5 sweeps 28..46 ms).
func Paper(delayTarget time.Duration) Spec {
	// Oppositely-directed pair sources share a phase so their packets can
	// ride one exchange (the premise of the paper's piggybacking).
	gs := []GSFlow{
		{ID: 1, Slave: 1, Dir: piconet.Up, Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176},
		{ID: 2, Slave: 2, Dir: piconet.Down, Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176, Phase: 5 * time.Millisecond},
		{ID: 3, Slave: 2, Dir: piconet.Up, Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176, Phase: 5 * time.Millisecond},
		{ID: 4, Slave: 3, Dir: piconet.Up, Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176, Phase: 10 * time.Millisecond},
	}
	rates := []float64{41.6, 47.2, 52.8, 58.4}
	var be []BEFlow
	id := piconet.FlowID(5)
	for i, rate := range rates {
		slave := piconet.SlaveID(4 + i)
		phase := time.Duration(i) * 5 * time.Millisecond
		be = append(be,
			BEFlow{ID: id, Slave: slave, Dir: piconet.Down, RateKbps: rate, PacketSize: 176, Phase: phase},
			BEFlow{ID: id + 1, Slave: slave, Dir: piconet.Up, RateKbps: rate, PacketSize: 176, Phase: phase},
		)
		id += 2
	}
	return Spec{
		Name:        "paper-fig4",
		GS:          gs,
		BE:          be,
		DelayTarget: delayTarget,
		Allowed:     baseband.PaperTypes,
		Duration:    30 * time.Second,
		Seed:        1,
	}
}

// Baseline returns the best-effort poller comparison setup (experiment
// A2): a BE-only piconet with four loaded slaves (60..90 kbps per
// direction, overloading the channel together) and three idle slaves that
// penalise non-adaptive pollers. kind selects the poller under test.
func Baseline(kind BEPollerKind) Spec {
	var be []BEFlow
	id := piconet.FlowID(1)
	for i, rate := range []float64{60, 70, 80, 90} {
		slave := piconet.SlaveID(4 + i)
		be = append(be,
			BEFlow{ID: id, Slave: slave, Dir: piconet.Down, RateKbps: rate, PacketSize: 176},
			BEFlow{ID: id + 1, Slave: slave, Dir: piconet.Up, RateKbps: rate, PacketSize: 176},
		)
		id += 2
	}
	// Idle slaves: registered with negligible-rate flows so the pollers
	// must discover they are uninteresting.
	for s := piconet.SlaveID(1); s <= 3; s++ {
		be = append(be, BEFlow{
			ID: id, Slave: s, Dir: piconet.Up, RateKbps: 0.5, PacketSize: 176,
		})
		id++
	}
	return Spec{
		Name:     fmt.Sprintf("baseline-%s", kind),
		BE:       be,
		BEPoller: kind,
	}
}

// Hooks are the runtime-only attachments of a run: live observers and
// channel-model instances that cannot travel in a pure-data Spec. Hooked
// runs are excluded from the harness run cache (their side effects cannot
// be replayed).
type Hooks struct {
	// Tracer, when set, receives every completed exchange (see
	// piconet.RingTracer and piconet.NewCSVTracer).
	Tracer piconet.Tracer
	// Radio, when set, overrides Spec.Radio with a live model instance
	// (e.g. a pre-seeded stateful channel).
	Radio radio.Model
}

// Zero reports whether no hook is attached.
func (h Hooks) Zero() bool { return h.Tracer == nil && h.Radio == nil }

// FlowResult summarises one flow after a run.
type FlowResult struct {
	ID piconet.FlowID
	// Piconet names the flow's piconet in scatternet runs ("" for flat
	// single-piconet specs). Flow ids are unique per piconet only.
	Piconet string
	// Route names the end-to-end route this flow is one hop of ("" for
	// ordinary flows). Per-hop rows measure the hop; the end-to-end view
	// lives in Result.Routes.
	Route     string
	Slave     piconet.SlaveID
	Dir       piconet.Direction
	Class     piconet.Class
	Offered   uint64 // packets generated
	Delivered uint64 // packets fully delivered
	Lost      uint64 // packets corrupted on air (lossy radio, no ARQ)
	Kbps      float64
	DelayMax  time.Duration
	DelayMean time.Duration
	DelayP99  time.Duration
	// DelayJitter is the standard deviation of the packet delay (voice
	// and video sources care about it as much as the bound).
	DelayJitter time.Duration
	// Fate records what the fault/recovery machinery did to the flow:
	// "" (untouched), FateSuspended (link died, no recovery), FateDegraded
	// (renegotiated at a looser bound), FateMoved (handed off to another
	// piconet — this row is the source-side remnant), FateCrashed (its
	// piconet's master crashed).
	Fate string
	// Bound and Rate are set for GS flows only. Bound is the loosest
	// bound the flow ever exported while installed: later admissions may
	// shift a flow's priority and grow its x, so this is the weakest
	// promise in effect at any point — the sound value to check measured
	// delays against.
	Bound time.Duration
	Rate  float64
	// Delay exposes the flow's full delay statistics (quantiles,
	// histogram filling). Read-only after the run.
	Delay *stats.DurationStats
}

// Result is a completed scenario run.
type Result struct {
	Spec    Spec
	Elapsed time.Duration
	// Events is the number of kernel events the run executed (decision
	// wake-ups, exchange completions, traffic arrivals); with Elapsed it
	// yields the simulator's events-per-second throughput.
	Events uint64
	Flows  []FlowResult
	// SlaveKbps is the per-slave delivered ACL throughput, both
	// directions; SCOKbps the per-slave SCO voice throughput.
	SlaveKbps map[piconet.SlaveID]float64
	SCOKbps   map[piconet.SlaveID]float64
	Slots     piconet.SlotAccount
	GSPolls   uint64
	BEPolls   uint64
	Skipped   uint64
	// Admitted is the admission plan in force at the end of the run.
	Admitted []*admission.PlannedFlow
	// Admissions is the online admission log: one record per timeline
	// event, in application order, with per-request accept/reject
	// outcomes (empty for static specs). In scatternet runs every record
	// names its piconet.
	Admissions []AdmissionRecord
	// Routes holds the end-to-end results of the spec's routes, in
	// declaration order (empty for route-free specs). Per-hop flow rows
	// appear in Flows/Piconets like ordinary GS flows, labelled with the
	// route name.
	Routes []RouteResult
	// Piconets holds the per-piconet results, in creation order. Flat
	// single-piconet specs carry one entry; the Result-level fields above
	// are its values verbatim. Scatternet runs roll the piconets up into
	// the Result-level fields: Flows concatenates, the throughput maps
	// and slot account sum per slave id across piconets, and the poll
	// counters total.
	Piconets []PiconetResult
}

// FlowByID returns the result row of a flow.
func (r *Result) FlowByID(id piconet.FlowID) (FlowResult, bool) {
	for _, f := range r.Flows {
		if f.ID == id {
			return f, true
		}
	}
	return FlowResult{}, false
}

// TotalKbps returns the delivered throughput of all flows of a class.
func (r *Result) TotalKbps(class piconet.Class) float64 {
	total := 0.0
	for _, f := range r.Flows {
		if f.Class == class {
			total += f.Kbps
		}
	}
	return total
}

// BoundViolations returns GS flows whose measured maximum delay exceeded
// the exported bound (must be empty for a correct scheduler on an
// uncoupled piconet; co-channel interference is exactly what makes it
// non-empty in scatternet runs).
func (r *Result) BoundViolations() []FlowResult {
	var out []FlowResult
	for _, f := range r.Flows {
		if f.Class == piconet.Guaranteed && f.DelayMax > f.Bound {
			out = append(out, f)
		}
	}
	return out
}

// ViolationFraction is the scatternet-wide fraction of GS flows whose
// measured maximum delay exceeded the exported bound (0 when the run had
// no GS flows).
func (r *Result) ViolationFraction() float64 {
	gs, bad := 0, 0
	for _, f := range r.Flows {
		if f.Class != piconet.Guaranteed {
			continue
		}
		gs++
		if f.DelayMax > f.Bound {
			bad++
		}
	}
	if gs == 0 {
		return 0
	}
	return float64(bad) / float64(gs)
}

// PiconetByName returns the result of a piconet.
func (r *Result) PiconetByName(name string) (PiconetResult, bool) {
	for _, p := range r.Piconets {
		if p.Name == name {
			return p, true
		}
	}
	return PiconetResult{}, false
}

// multiPiconet reports whether the result spans more than one piconet
// (reports then gain a piconet column).
func (r *Result) multiPiconet() bool { return len(r.Piconets) > 1 }

// Report renders a run as a table. Scatternet runs gain a leading
// "piconet" column; single-piconet output is unchanged.
func (r *Result) Report() *stats.Table {
	title := fmt.Sprintf("%s: %v over %v (GS polls %d, BE polls %d, skipped %d)",
		r.Spec.Name, r.Spec.Mode, r.Elapsed, r.GSPolls, r.BEPolls, r.Skipped)
	columns := []string{"flow", "slave", "dir", "class", "kbps", "delay_mean", "jitter", "delay_p99", "delay_max", "bound", "ok"}
	// A route column appears only when routed flows exist, mirroring the
	// piconet-column rule: route-free reports render exactly as before.
	withRoute := false
	for _, f := range r.Flows {
		if f.Route != "" {
			withRoute = true
			break
		}
	}
	if withRoute {
		columns = append([]string{"route"}, columns...)
	}
	if r.multiPiconet() {
		columns = append([]string{"piconet"}, columns...)
	}
	tbl := stats.NewTable(title, columns...)
	for _, f := range r.Flows {
		ok := ""
		bound := ""
		if f.Class == piconet.Guaranteed {
			bound = f.Bound.String()
			if f.DelayMax <= f.Bound {
				ok = "yes"
			} else {
				ok = "VIOLATED"
			}
		}
		cells := []any{f.ID, f.Slave, f.Dir, f.Class, stats.FormatKbps(f.Kbps),
			f.DelayMean.Round(time.Microsecond), f.DelayJitter.Round(time.Microsecond),
			f.DelayP99.Round(time.Microsecond),
			f.DelayMax.Round(time.Microsecond), bound, ok}
		if withRoute {
			cells = append([]any{f.Route}, cells...)
		}
		if r.multiPiconet() {
			cells = append([]any{f.Piconet}, cells...)
		}
		tbl.AddRow(cells...)
	}
	return tbl
}

// AdmissionReport renders the online admission log as a table (nil when
// the run had no timeline). Records that name a piconet add a piconet
// column; flat single-piconet output is unchanged.
func (r *Result) AdmissionReport() *stats.Table {
	if len(r.Admissions) == 0 {
		return nil
	}
	withPiconet, withRoute := false, false
	for _, a := range r.Admissions {
		if a.Piconet != "" {
			withPiconet = true
		}
		if a.Route != "" {
			withRoute = true
		}
	}
	columns := []string{"at", "op", "flow", "slave", "outcome", "bound", "rate_Bps", "reason"}
	if withRoute {
		// Route admissions render one row per hop; route-free logs are
		// unchanged (same only-when-present rule as the piconet column).
		columns = append(columns, "route", "hop")
	}
	if withPiconet {
		columns = append([]string{"piconet"}, columns...)
	}
	tbl := stats.NewTable(
		fmt.Sprintf("%s: online admission log (%d requests)", r.Spec.Name, len(r.Admissions)),
		columns...)
	for _, a := range r.Admissions {
		outcome := "accepted"
		if !a.Accepted {
			outcome = "rejected"
		}
		flow, bound, rate := "", "", ""
		if a.Flow != piconet.None {
			flow = fmt.Sprintf("%d", a.Flow)
		}
		if a.Bound > 0 {
			bound = a.Bound.Round(time.Microsecond).String()
		}
		if a.Rate > 0 {
			rate = fmt.Sprintf("%.0f", a.Rate)
		}
		cells := []any{a.At, a.Op, flow, a.Slave, outcome, bound, rate, a.Reason}
		if withRoute {
			hop := ""
			if a.Hop > 0 {
				hop = fmt.Sprintf("%d", a.Hop)
			}
			cells = append(cells, a.Route, hop)
		}
		if withPiconet {
			cells = append([]any{a.Piconet}, cells...)
		}
		tbl.AddRow(cells...)
	}
	return tbl
}
