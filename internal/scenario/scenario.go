// Package scenario wires complete simulation scenarios: flow sets, traffic
// sources, admission, scheduler and measurement. It provides the paper's
// §4.1 evaluation setup (Fig. 4) as a preset and a generic runner used by
// the experiment harness, the command-line tools and the examples.
package scenario

import (
	"errors"
	"fmt"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/baseband"
	"bluegs/internal/core"
	"bluegs/internal/piconet"
	"bluegs/internal/poller"
	"bluegs/internal/radio"
	"bluegs/internal/sco"
	"bluegs/internal/sim"
	"bluegs/internal/stats"
	"bluegs/internal/traffic"
	"bluegs/internal/tspec"
)

// Errors returned by the runner.
var (
	ErrBadSpec = errors.New("scenario: invalid specification")
)

// GSFlow describes one Guaranteed Service flow and its CBR source.
type GSFlow struct {
	ID    piconet.FlowID
	Slave piconet.SlaveID
	Dir   piconet.Direction
	// Interval is the source's packet spacing; MinSize/MaxSize its
	// uniform packet size support. The TSpec is derived per §4.1.
	Interval time.Duration
	MinSize  int
	MaxSize  int
	// Phase offsets the source start.
	Phase time.Duration
	// Allowed overrides the spec-wide baseband type set when non-empty.
	Allowed baseband.TypeSet
}

// Spec returns the flow's token bucket specification.
func (g GSFlow) Spec() tspec.TSpec {
	return tspec.CBR(g.Interval, g.MinSize, g.MaxSize)
}

// BEFlow describes one best-effort flow and its CBR source.
type BEFlow struct {
	ID    piconet.FlowID
	Slave piconet.SlaveID
	Dir   piconet.Direction
	// RateKbps is the offered load; PacketSize the fixed packet size.
	RateKbps   float64
	PacketSize int
	Phase      time.Duration
	// Allowed overrides the spec-wide baseband type set when non-empty
	// (e.g. DH1-only flows that fit between SCO reservations).
	Allowed baseband.TypeSet
}

// SCOLinkSpec reserves a synchronous voice channel to a slave.
type SCOLinkSpec struct {
	Slave piconet.SlaveID
	Type  baseband.PacketType
}

// BEPollerKind names a best-effort poller for specs.
type BEPollerKind string

// Best-effort poller kinds.
const (
	BEPFP        BEPollerKind = "pfp"
	BERoundRobin BEPollerKind = "round-robin"
	BEExhaustive BEPollerKind = "exhaustive-rr"
	BEFEP        BEPollerKind = "fep"
	BEEDC        BEPollerKind = "edc"
	BEDemand     BEPollerKind = "demand"
	BEHOL        BEPollerKind = "hol-priority"
)

// NewBEPoller constructs a poller by kind (empty kind means PFP).
func NewBEPoller(kind BEPollerKind) (poller.Poller, error) {
	switch kind {
	case "", BEPFP:
		return poller.NewPFP(nil), nil
	case BERoundRobin:
		return &poller.RoundRobin{}, nil
	case BEExhaustive:
		return &poller.Exhaustive{}, nil
	case BEFEP:
		return &poller.FEP{}, nil
	case BEEDC:
		return poller.NewEDC(0, 0), nil
	case BEDemand:
		return poller.NewDemand(0), nil
	case BEHOL:
		return poller.NewHOL(nil), nil
	default:
		return nil, fmt.Errorf("%w: unknown BE poller %q", ErrBadSpec, kind)
	}
}

// Spec is a complete scenario specification.
type Spec struct {
	// Name labels reports.
	Name string
	// GS and BE are the flow sets.
	GS []GSFlow
	BE []BEFlow
	// DelayTarget is the delay bound requested for every GS flow.
	// Targets below the supportable minimum are clamped to the tightest
	// achievable bound (see admission.PlanForDelayBestEffort).
	DelayTarget time.Duration
	// Mode is the planner mode (default VariableInterval).
	Mode core.Mode
	// Rules are the active §3.2 improvements (default AllImprovements;
	// meaningful in VariableInterval mode). Set RulesSet to use a zero
	// value.
	Rules    core.Improvements
	RulesSet bool
	// BEPoller selects the best-effort discipline (default PFP).
	BEPoller BEPollerKind
	// PFPThreshold overrides the PFP active-prediction threshold when
	// positive (only meaningful with the PFP poller).
	PFPThreshold float64
	// Allowed is the baseband type set for all flows (default DH1+DH3).
	Allowed baseband.TypeSet
	// Duration is the simulated time (default 30 s).
	Duration time.Duration
	// Seed drives all randomness (default 1).
	Seed int64
	// Radio is the channel model (default ideal); ARQ enables
	// retransmissions; LossRecovery additionally grants lost GS segments
	// recovery polls from the saved bandwidth (paper future work).
	Radio        radio.Model
	ARQ          bool
	LossRecovery bool
	// WithoutPiggybacking disables pair detection in admission.
	WithoutPiggybacking bool
	// SCO lists reserved synchronous links. With SCO present,
	// direction-aware admission is usually required so single-direction
	// GS exchanges fit between reservations.
	SCO []SCOLinkSpec
	// Tracer, when set, receives every completed exchange (see
	// piconet.RingTracer and piconet.NewCSVTracer).
	Tracer piconet.Tracer
	// DirectionAware switches admission to direction-specific worst
	// exchange times (see admission.Config.DirectionAware).
	DirectionAware bool
}

// Paper returns the paper's Fig. 4 setup: a seven-slave piconet with four
// 64 kbps GS flows (flow 1 at S1, flows 2+3 oppositely directed at S2,
// flow 4 at S3) and eight BE flows (pairs at S4..S7 offering 41.6, 47.2,
// 52.8 and 58.4 kbps per direction), all using DH1+DH3 with best-fit
// segmentation. delayTarget is the delay bound requested for the GS flows
// (the paper's Fig. 5 sweeps 28..46 ms).
func Paper(delayTarget time.Duration) Spec {
	// Oppositely-directed pair sources share a phase so their packets can
	// ride one exchange (the premise of the paper's piggybacking).
	gs := []GSFlow{
		{ID: 1, Slave: 1, Dir: piconet.Up, Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176},
		{ID: 2, Slave: 2, Dir: piconet.Down, Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176, Phase: 5 * time.Millisecond},
		{ID: 3, Slave: 2, Dir: piconet.Up, Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176, Phase: 5 * time.Millisecond},
		{ID: 4, Slave: 3, Dir: piconet.Up, Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176, Phase: 10 * time.Millisecond},
	}
	rates := []float64{41.6, 47.2, 52.8, 58.4}
	var be []BEFlow
	id := piconet.FlowID(5)
	for i, rate := range rates {
		slave := piconet.SlaveID(4 + i)
		phase := time.Duration(i) * 5 * time.Millisecond
		be = append(be,
			BEFlow{ID: id, Slave: slave, Dir: piconet.Down, RateKbps: rate, PacketSize: 176, Phase: phase},
			BEFlow{ID: id + 1, Slave: slave, Dir: piconet.Up, RateKbps: rate, PacketSize: 176, Phase: phase},
		)
		id += 2
	}
	return Spec{
		Name:        "paper-fig4",
		GS:          gs,
		BE:          be,
		DelayTarget: delayTarget,
		Allowed:     baseband.PaperTypes,
		Duration:    30 * time.Second,
		Seed:        1,
	}
}

// Baseline returns the best-effort poller comparison setup (experiment
// A2): a BE-only piconet with four loaded slaves (60..90 kbps per
// direction, overloading the channel together) and three idle slaves that
// penalise non-adaptive pollers. kind selects the poller under test.
func Baseline(kind BEPollerKind) Spec {
	var be []BEFlow
	id := piconet.FlowID(1)
	for i, rate := range []float64{60, 70, 80, 90} {
		slave := piconet.SlaveID(4 + i)
		be = append(be,
			BEFlow{ID: id, Slave: slave, Dir: piconet.Down, RateKbps: rate, PacketSize: 176},
			BEFlow{ID: id + 1, Slave: slave, Dir: piconet.Up, RateKbps: rate, PacketSize: 176},
		)
		id += 2
	}
	// Idle slaves: registered with negligible-rate flows so the pollers
	// must discover they are uninteresting.
	for s := piconet.SlaveID(1); s <= 3; s++ {
		be = append(be, BEFlow{
			ID: id, Slave: s, Dir: piconet.Up, RateKbps: 0.5, PacketSize: 176,
		})
		id++
	}
	return Spec{
		Name:     fmt.Sprintf("baseline-%s", kind),
		BE:       be,
		BEPoller: kind,
	}
}

// FlowResult summarises one flow after a run.
type FlowResult struct {
	ID        piconet.FlowID
	Slave     piconet.SlaveID
	Dir       piconet.Direction
	Class     piconet.Class
	Offered   uint64 // packets generated
	Delivered uint64 // packets fully delivered
	Lost      uint64 // packets corrupted on air (lossy radio, no ARQ)
	Kbps      float64
	DelayMax  time.Duration
	DelayMean time.Duration
	DelayP99  time.Duration
	// DelayJitter is the standard deviation of the packet delay (voice
	// and video sources care about it as much as the bound).
	DelayJitter time.Duration
	// Bound and Rate are set for GS flows only.
	Bound time.Duration
	Rate  float64
	// Delay exposes the flow's full delay statistics (quantiles,
	// histogram filling). Read-only after the run.
	Delay *stats.DurationStats
}

// Result is a completed scenario run.
type Result struct {
	Spec    Spec
	Elapsed time.Duration
	// Events is the number of kernel events the run executed (decision
	// wake-ups, exchange completions, traffic arrivals); with Elapsed it
	// yields the simulator's events-per-second throughput.
	Events uint64
	Flows  []FlowResult
	// SlaveKbps is the per-slave delivered ACL throughput, both
	// directions; SCOKbps the per-slave SCO voice throughput.
	SlaveKbps map[piconet.SlaveID]float64
	SCOKbps   map[piconet.SlaveID]float64
	Slots     piconet.SlotAccount
	GSPolls   uint64
	BEPolls   uint64
	Skipped   uint64
	// Admitted is the admission plan the run used.
	Admitted []*admission.PlannedFlow
}

// FlowByID returns the result row of a flow.
func (r *Result) FlowByID(id piconet.FlowID) (FlowResult, bool) {
	for _, f := range r.Flows {
		if f.ID == id {
			return f, true
		}
	}
	return FlowResult{}, false
}

// TotalKbps returns the delivered throughput of all flows of a class.
func (r *Result) TotalKbps(class piconet.Class) float64 {
	total := 0.0
	for _, f := range r.Flows {
		if f.Class == class {
			total += f.Kbps
		}
	}
	return total
}

// BoundViolations returns GS flows whose measured maximum delay exceeded
// the exported bound (must be empty for a correct scheduler).
func (r *Result) BoundViolations() []FlowResult {
	var out []FlowResult
	for _, f := range r.Flows {
		if f.Class == piconet.Guaranteed && f.DelayMax > f.Bound {
			out = append(out, f)
		}
	}
	return out
}

// Run executes a scenario.
func Run(spec Spec) (*Result, error) {
	if len(spec.GS) == 0 && len(spec.BE) == 0 {
		return nil, fmt.Errorf("%w: no flows", ErrBadSpec)
	}
	spec = spec.WithDefaults()

	// Admission: the piconet-wide worst exchange must cover BE traffic.
	admCfg := admission.Config{MaxExchange: maxExchange(spec), DirectionAware: spec.DirectionAware}
	for _, l := range spec.SCO {
		ch, err := sco.NewChannel(l.Type)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
		}
		admCfg.SCOLinks = append(admCfg.SCOLinks, ch)
	}
	var admOpts []admission.ControllerOption
	if spec.WithoutPiggybacking {
		admOpts = append(admOpts, admission.WithoutPiggybacking())
	}
	allowedFor := func(override baseband.TypeSet) baseband.TypeSet {
		if !override.Empty() {
			return override
		}
		return spec.Allowed
	}
	var delayReqs []admission.DelayRequest
	for _, g := range spec.GS {
		delayReqs = append(delayReqs, admission.DelayRequest{
			Request: admission.Request{
				ID:      g.ID,
				Slave:   g.Slave,
				Dir:     g.Dir,
				Spec:    g.Spec(),
				Allowed: allowedFor(g.Allowed),
			},
			Target: spec.DelayTarget,
		})
	}
	ctrl, err := admission.PlanForDelayBestEffort(delayReqs, admCfg, admOpts...)
	if err != nil {
		return nil, fmt.Errorf("scenario: admission: %w", err)
	}

	// Piconet construction.
	s := sim.New(sim.WithSeed(spec.Seed))
	var pnOpts []piconet.Option
	if spec.Radio != nil {
		pnOpts = append(pnOpts, piconet.WithRadio(spec.Radio))
	}
	if spec.ARQ {
		pnOpts = append(pnOpts, piconet.WithARQ(true))
	}
	if spec.Tracer != nil {
		pnOpts = append(pnOpts, piconet.WithTracer(spec.Tracer))
	}
	pn := piconet.New(s, pnOpts...)
	slaves := map[piconet.SlaveID]bool{}
	addSlave := func(id piconet.SlaveID) error {
		if slaves[id] {
			return nil
		}
		slaves[id] = true
		return pn.AddSlave(id)
	}
	for _, g := range spec.GS {
		if err := addSlave(g.Slave); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		if err := pn.AddFlow(piconet.FlowConfig{
			ID: g.ID, Slave: g.Slave, Dir: g.Dir,
			Class: piconet.Guaranteed, Allowed: allowedFor(g.Allowed),
		}); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}
	for _, b := range spec.BE {
		if err := addSlave(b.Slave); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		if err := pn.AddFlow(piconet.FlowConfig{
			ID: b.ID, Slave: b.Slave, Dir: b.Dir,
			Class: piconet.BestEffort, Allowed: allowedFor(b.Allowed),
		}); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}
	for _, l := range spec.SCO {
		if err := addSlave(l.Slave); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		if err := pn.AddSCOLink(l.Slave, l.Type); err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
	}

	// Scheduler.
	var bePoller poller.Poller
	if (spec.BEPoller == "" || spec.BEPoller == BEPFP) && spec.PFPThreshold > 0 {
		bePoller = poller.NewPFP(nil, poller.WithActiveThreshold(spec.PFPThreshold))
	} else if bePoller, err = NewBEPoller(spec.BEPoller); err != nil {
		return nil, err
	}
	coreOpts := []core.Option{
		core.WithMode(spec.Mode),
		core.WithBEPoller(bePoller),
		core.WithLossRecovery(spec.LossRecovery),
	}
	if spec.RulesSet {
		coreOpts = append(coreOpts, core.WithImprovements(spec.Rules))
	}
	sched, err := core.New(pn, ctrl.Flows(), coreOpts...)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	pn.SetScheduler(sched)

	// Traffic sources.
	for _, g := range spec.GS {
		attachSource(s, pn, g.ID, traffic.CBR{Interval: g.Interval},
			traffic.UniformSize{Min: g.MinSize, Max: g.MaxSize}, g.Phase)
	}
	for _, b := range spec.BE {
		gen := traffic.CBRForRate(b.RateKbps*1000, b.PacketSize)
		attachSource(s, pn, b.ID, gen, traffic.FixedSize(b.PacketSize), b.Phase)
	}

	if err := pn.Start(); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if err := s.Run(spec.Duration); err != nil {
		return nil, fmt.Errorf("scenario: run: %w", err)
	}
	if err := pn.Err(); err != nil {
		return nil, fmt.Errorf("scenario: engine: %w", err)
	}

	return collect(spec, s, pn, sched, ctrl), nil
}

// maxExchange derives the piconet-wide worst ongoing ACL exchange Xi from
// the actual flow layout: per slave, the largest downlink leg plus the
// largest uplink leg (POLL/NULL legs count one slot). With DirectionAware
// disabled the paper's conservative assumption applies: any flow's exchange
// may carry maximal segments both ways.
func maxExchange(spec Spec) time.Duration {
	allowedFor := func(override baseband.TypeSet) baseband.TypeSet {
		if !override.Empty() {
			return override
		}
		return spec.Allowed
	}
	type legs struct{ down, up int }
	perSlave := map[piconet.SlaveID]*legs{}
	visit := func(slave piconet.SlaveID, dir piconet.Direction, allowed baseband.TypeSet, conservative bool) {
		l := perSlave[slave]
		if l == nil {
			l = &legs{down: 1, up: 1}
			perSlave[slave] = l
		}
		slots := allowed.MaxSlots()
		if conservative {
			// Both legs may carry maximal segments (paper default).
			if slots > l.down {
				l.down = slots
			}
			if slots > l.up {
				l.up = slots
			}
			return
		}
		if dir == piconet.Down && slots > l.down {
			l.down = slots
		}
		if dir == piconet.Up && slots > l.up {
			l.up = slots
		}
	}
	for _, g := range spec.GS {
		visit(g.Slave, g.Dir, allowedFor(g.Allowed), !spec.DirectionAware)
	}
	for _, b := range spec.BE {
		// Best-effort exchanges serve whatever is queued each way, so
		// the legs are direction-specific regardless of the admission
		// mode.
		visit(b.Slave, b.Dir, allowedFor(b.Allowed), false)
	}
	maxSlots := 2
	for _, l := range perSlave {
		if s := l.down + l.up; s > maxSlots {
			maxSlots = s
		}
	}
	return baseband.SlotsToDuration(maxSlots)
}

// attachSource schedules a self-rescheduling traffic source.
func attachSource(s *sim.Simulator, pn *piconet.Piconet, flow piconet.FlowID,
	gen traffic.Generator, sizes traffic.SizeDist, phase time.Duration) {
	var tick func()
	tick = func() {
		_ = pn.EnqueuePacket(flow, sizes.Draw(s.Rand()))
		s.After(gen.NextInterval(s.Rand()), tick)
	}
	s.Schedule(phase, tick)
}

// collect assembles the result.
func collect(spec Spec, s *sim.Simulator, pn *piconet.Piconet, sched *core.Scheduler,
	ctrl *admission.Controller) *Result {
	elapsed := s.Now()
	res := &Result{
		Spec:      spec,
		Elapsed:   elapsed,
		Events:    s.Executed(),
		SlaveKbps: make(map[piconet.SlaveID]float64),
		SCOKbps:   make(map[piconet.SlaveID]float64),
		Slots:     pn.SlotAccount(elapsed),
		GSPolls:   sched.GSPolls(),
		BEPolls:   sched.BEPolls(),
		Skipped:   sched.SkippedPolls(),
		Admitted:  ctrl.Flows(),
	}
	for _, id := range pn.Flows() {
		cfg, _ := pn.FlowConfig(id)
		delay, _ := pn.FlowDelayStats(id)
		delivered, _ := pn.FlowDelivered(id)
		offered, _ := pn.FlowOffered(id)
		lost, _ := pn.FlowLost(id)
		fr := FlowResult{
			ID:          id,
			Slave:       cfg.Slave,
			Dir:         cfg.Dir,
			Class:       cfg.Class,
			Offered:     offered.Packets(),
			Delivered:   delivered.Packets(),
			Lost:        lost.Packets(),
			Kbps:        delivered.Kbps(elapsed),
			DelayMax:    delay.Max(),
			DelayMean:   delay.Mean(),
			DelayP99:    delay.Quantile(0.99),
			DelayJitter: delay.StdDev(),
			Delay:       delay,
		}
		if pf, ok := ctrl.Find(id); ok {
			fr.Bound = pf.Bound
			fr.Rate = pf.Request.Rate
		}
		res.Flows = append(res.Flows, fr)
	}
	for _, slave := range pn.Slaves() {
		res.SlaveKbps[slave] = pn.SlaveThroughputKbps(slave, elapsed)
		if down, up, ok := pn.SCOMeters(slave); ok {
			res.SCOKbps[slave] = down.Kbps(elapsed) + up.Kbps(elapsed)
		}
	}
	return res
}

// Report renders a run as a table.
func (r *Result) Report() *stats.Table {
	tbl := stats.NewTable(
		fmt.Sprintf("%s: %v over %v (GS polls %d, BE polls %d, skipped %d)",
			r.Spec.Name, r.Spec.Mode, r.Elapsed, r.GSPolls, r.BEPolls, r.Skipped),
		"flow", "slave", "dir", "class", "kbps", "delay_mean", "jitter", "delay_p99", "delay_max", "bound", "ok")
	for _, f := range r.Flows {
		ok := ""
		bound := ""
		if f.Class == piconet.Guaranteed {
			bound = f.Bound.String()
			if f.DelayMax <= f.Bound {
				ok = "yes"
			} else {
				ok = "VIOLATED"
			}
		}
		tbl.AddRow(f.ID, f.Slave, f.Dir, f.Class, stats.FormatKbps(f.Kbps),
			f.DelayMean.Round(time.Microsecond), f.DelayJitter.Round(time.Microsecond),
			f.DelayP99.Round(time.Microsecond),
			f.DelayMax.Round(time.Microsecond), bound, ok)
	}
	return tbl
}
