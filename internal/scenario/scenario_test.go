package scenario

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"bluegs/internal/core"
	"bluegs/internal/piconet"
)

// runPaper runs the Fig. 4 scenario briefly.
func runPaper(t *testing.T, target time.Duration, mutate func(*Spec)) *Result {
	t.Helper()
	spec := Paper(target)
	spec.Duration = 12 * time.Second
	if mutate != nil {
		mutate(&spec)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestPaperSpecShape(t *testing.T) {
	spec := Paper(40 * time.Millisecond)
	if len(spec.GS) != 4 || len(spec.BE) != 8 {
		t.Fatalf("GS=%d BE=%d, want 4/8", len(spec.GS), len(spec.BE))
	}
	// Flows 2 and 3 oppositely directed on slave 2.
	if spec.GS[1].Slave != 2 || spec.GS[2].Slave != 2 || spec.GS[1].Dir == spec.GS[2].Dir {
		t.Fatal("flows 2/3 must be an opposite pair on slave 2")
	}
	// BE rates per the paper.
	wantRates := []float64{41.6, 41.6, 47.2, 47.2, 52.8, 52.8, 58.4, 58.4}
	for i, b := range spec.BE {
		if b.RateKbps != wantRates[i] {
			t.Fatalf("BE[%d] rate = %v, want %v", i, b.RateKbps, wantRates[i])
		}
		if b.PacketSize != 176 {
			t.Fatalf("BE[%d] size = %d, want 176", i, b.PacketSize)
		}
	}
	// Total offered: 256 kbps GS + 400 kbps BE = 656 kbps (§4.2).
	gsTotal := 0.0
	for _, g := range spec.GS {
		gsTotal += 8 * float64(g.MaxSize+g.MinSize) / 2 / g.Interval.Seconds() / 1000
	}
	beTotal := 0.0
	for _, b := range spec.BE {
		beTotal += b.RateKbps
	}
	if math.Abs(gsTotal-256) > 1 {
		t.Fatalf("GS offered = %v kbps, want 256", gsTotal)
	}
	if math.Abs(beTotal-400) > 0.01 {
		t.Fatalf("BE offered = %v kbps, want 400", beTotal)
	}
}

func TestPaperRunLooseTarget(t *testing.T) {
	res := runPaper(t, 46*time.Millisecond, nil)
	// No GS bound violations (the paper's headline).
	if v := res.BoundViolations(); len(v) != 0 {
		t.Fatalf("bound violations: %+v", v)
	}
	// Every GS flow carries its full 64 kbps.
	for _, id := range []piconet.FlowID{1, 2, 3, 4} {
		f, ok := res.FlowByID(id)
		if !ok {
			t.Fatalf("flow %d missing", id)
		}
		if f.Kbps < 62 || f.Kbps > 66 {
			t.Fatalf("GS flow %d throughput = %.1f kbps, want ~64", id, f.Kbps)
		}
	}
	// At the loose requirement all BE flows achieve (nearly) their
	// offered load.
	for _, b := range res.Spec.BE {
		f, _ := res.FlowByID(b.ID)
		if f.Kbps < b.RateKbps*0.95 {
			t.Fatalf("BE flow %d = %.1f kbps, want ~%.1f", b.ID, f.Kbps, b.RateKbps)
		}
	}
	// Total carried ~656 kbps (§4.2).
	total := res.TotalKbps(piconet.Guaranteed) + res.TotalKbps(piconet.BestEffort)
	if total < 630 || total > 670 {
		t.Fatalf("total = %.1f kbps, want ~656", total)
	}
}

func TestPaperRunTightTargetSqueezesBE(t *testing.T) {
	loose := runPaper(t, 46*time.Millisecond, nil)
	tight := runPaper(t, 29*time.Millisecond, nil)
	if v := tight.BoundViolations(); len(v) != 0 {
		t.Fatalf("bound violations at tight target: %+v", v)
	}
	// GS still at full rate.
	for _, id := range []piconet.FlowID{1, 2, 3, 4} {
		f, _ := tight.FlowByID(id)
		if f.Kbps < 62 {
			t.Fatalf("GS flow %d = %.1f kbps at tight target", id, f.Kbps)
		}
	}
	// Tight requirements cost BE throughput (the Fig. 5 shape).
	beLoose := loose.TotalKbps(piconet.BestEffort)
	beTight := tight.TotalKbps(piconet.BestEffort)
	if beTight >= beLoose {
		t.Fatalf("BE throughput should drop with tighter targets: %.1f -> %.1f", beLoose, beTight)
	}
	// And GS consumes more slots.
	gsLoose := loose.Slots.GSData + loose.Slots.GSOverhead
	gsTight := tight.Slots.GSData + tight.Slots.GSOverhead
	if gsTight <= gsLoose {
		t.Fatalf("GS slots should grow with tighter targets: %d -> %d", gsLoose, gsTight)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Spec{}); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("empty spec: err = %v", err)
	}
	spec := Paper(40 * time.Millisecond)
	spec.BEPoller = "bogus"
	if _, err := Run(spec); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("bogus poller: err = %v", err)
	}
}

func TestNewBEPollerKinds(t *testing.T) {
	kinds := []BEPollerKind{"", BEPFP, BERoundRobin, BEExhaustive, BEFEP, BEEDC, BEDemand, BEHOL}
	for _, k := range kinds {
		p, err := NewBEPoller(k, PollerParams{})
		if err != nil {
			t.Fatalf("NewBEPoller(%q): %v", k, err)
		}
		if p == nil {
			t.Fatalf("NewBEPoller(%q) returned nil", k)
		}
	}
}

func TestFixedVsVariableModes(t *testing.T) {
	variable := runPaper(t, 40*time.Millisecond, nil)
	fixed := runPaper(t, 40*time.Millisecond, func(s *Spec) { s.Mode = core.FixedInterval })
	if len(fixed.BoundViolations()) != 0 {
		t.Fatalf("fixed-mode violations: %+v", fixed.BoundViolations())
	}
	fixedGS := fixed.Slots.GSData + fixed.Slots.GSOverhead
	variableGS := variable.Slots.GSData + variable.Slots.GSOverhead
	if variableGS >= fixedGS {
		t.Fatalf("variable mode should save GS slots: %d vs %d", variableGS, fixedGS)
	}
}

func TestReportRenders(t *testing.T) {
	res := runPaper(t, 40*time.Millisecond, func(s *Spec) { s.Duration = 3 * time.Second })
	out := res.Report().String()
	for _, want := range []string{"paper-fig4", "GS", "BE", "yes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATED") {
		t.Fatalf("report shows violations:\n%s", out)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := runPaper(t, 40*time.Millisecond, func(s *Spec) { s.Duration = 3 * time.Second })
	b := runPaper(t, 40*time.Millisecond, func(s *Spec) { s.Duration = 3 * time.Second })
	for i := range a.Flows {
		fa, fb := a.Flows[i], b.Flows[i]
		// The Delay field is a per-run pointer; compare values only.
		fa.Delay, fb.Delay = nil, nil
		if fa != fb {
			t.Fatalf("non-deterministic flow result %d: %+v vs %+v", i, fa, fb)
		}
	}
}

func TestWithoutPiggybackingStillRunsSmallSet(t *testing.T) {
	// The full paper set admits without piggybacking only at looser
	// targets (more streams); verify the knob is wired by running with a
	// loose target.
	res := runPaper(t, 60*time.Millisecond, func(s *Spec) {
		s.WithoutPiggybacking = true
		s.Duration = 3 * time.Second
	})
	// Flows 2 and 3 must now be separate streams: their admission
	// records have no counterparts.
	for _, pf := range res.Admitted {
		if pf.Counterpart != piconet.None {
			t.Fatalf("flow %d has counterpart %d despite WithoutPiggybacking",
				pf.Request.ID, pf.Counterpart)
		}
	}
}
