package scenario

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"bluegs/internal/faults"
	"bluegs/internal/piconet"
	"bluegs/internal/radio"
	"bluegs/internal/sim"
)

// interferenceEpoch is the fixed interference-exchange epoch of sharded
// runs: every shard runs its kernel this far, then all shards swap
// radio.Medium activity snapshots at a barrier (see Medium.ClearFactor /
// SetForeignClear). The FH collision probability is the only coupling
// between unbridged piconets, and it moves on utilization-window
// timescales (250 ms by default), so a 25 ms snapshot cadence tracks it
// closely while leaving ~40 decision intervals of useful work per shard
// per epoch. The value is a semantic constant of the sharded coupling
// model — never a function of the worker count — so results are
// byte-identical at any KernelWorkers.
const interferenceEpoch = 25 * time.Millisecond

// shardSeed derives shard g's RNG seed from the run seed. Shard 0 keeps
// the run seed itself; higher shards mix (seed, g) through a
// splitmix64-style finalizer over a different increment than
// harness.ReplicationSeed uses, so shard streams collide neither with
// each other nor with other replications' shard streams.
func shardSeed(base int64, g int) int64 {
	if g == 0 {
		return base
	}
	z := uint64(base) + uint64(g)*0xA0761D6478BD642F
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	seed := int64(z)
	if seed == 0 {
		seed = 1
	}
	return seed
}

// kernelWorkersFor resolves Spec.KernelWorkers (<= 0 means GOMAXPROCS).
func kernelWorkersFor(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// kernelShards partitions the spec's piconets into shard groups: the
// connected components of the "must share a kernel" relation. Bridges,
// routes and flow moves create cross-piconet event flow with zero
// lookahead (a store-and-forward handoff lands in the next hop at the
// very instant it completes), so every piconet they connect runs in one
// shard; piconets coupled only through the FH collision probability can
// run apart, synchronized at interference-exchange epochs. Scatternet-
// global machinery that reaches arbitrary piconets — the handoff
// recovery policy, master crashes (which re-derate every survivor),
// piconet churn, an unresolved move target, and runtime hooks — forces
// a single group, which is also the exact legacy single-kernel path.
//
// The partition is a pure function of the (defaulted) spec: it never
// depends on KernelWorkers, scheduling, or anything outside the spec,
// which is what keeps sharded runs byte-identical at any worker count.
func kernelShards(spec Spec, hooks Hooks) [][]string {
	ps := spec.piconetSpecs()
	names := make([]string, len(ps))
	idx := make(map[string]int, len(ps))
	for i, p := range ps {
		names[i] = p.Name
		idx[p.Name] = i
	}
	single := [][]string{names}
	if len(ps) < 2 || !hooks.Zero() {
		return single
	}
	if spec.Recovery.Policy == faults.PolicyHandoff || len(spec.Faults.Crashes) > 0 {
		return single
	}

	parent := make([]int, len(ps))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b string) {
		ia, okA := idx[a]
		ib, okB := idx[b]
		if !okA || !okB {
			return
		}
		ra, rb := find(ia), find(ib)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	unionAll := false
	routeEdges := func(rt RouteSpec) {
		hops, err := spec.routeHops(rt)
		if err != nil || len(hops) == 0 {
			// Validation rejects statically broken routes before the
			// partition matters; stay conservative regardless.
			unionAll = true
			return
		}
		for j := 1; j < len(hops); j++ {
			union(hops[0].Piconet, hops[j].Piconet)
		}
	}
	for _, br := range spec.Bridges {
		for j := 1; j < len(br.Residency); j++ {
			union(br.Residency[0].Piconet, br.Residency[j].Piconet)
		}
	}
	for _, rt := range spec.Routes {
		routeEdges(rt)
	}
	def := spec.defaultPiconetName()
	for _, ev := range spec.Timeline {
		switch {
		case ev.AddPiconet != nil || ev.RemovePiconet != "":
			// Churn mutates the shared medium membership and re-derates
			// every piconet: single kernel.
			return single
		case ev.AddRoute != nil:
			routeEdges(*ev.AddRoute)
		case ev.Move != nil:
			src := ev.Piconet
			if src == "" {
				src = def
			}
			if ev.Move.To == "" {
				// "First other live piconet" can resolve to any of them.
				unionAll = true
			} else {
				union(src, ev.Move.To)
			}
		}
	}
	if unionAll {
		return single
	}
	order := make([]int, 0, len(ps))
	members := make(map[int][]string, len(ps))
	for i, n := range names {
		r := find(i)
		if _, seen := members[r]; !seen {
			order = append(order, r)
		}
		members[r] = append(members[r], n)
	}
	out := make([][]string, 0, len(order))
	for _, r := range order {
		out = append(out, members[r])
	}
	return out
}

// routeGroup resolves the shard a route lives in: the group of its
// first hop's piconet (the partition guarantees every hop co-shards).
func routeGroup(spec Spec, groupOf map[string]int, rt RouteSpec) int {
	if hops, err := spec.routeHops(rt); err == nil && len(hops) > 0 {
		if g, ok := groupOf[hops[0].Piconet]; ok {
			return g
		}
	}
	if g, ok := groupOf[rt.Source]; ok {
		return g
	}
	return 0
}

// timelineShard resolves the shard that applies a timeline event: route
// events go to the route's shard, piconet-addressed events to the
// target piconet's shard, and events whose target the run can never
// know (an unknown name, an unknown route id) to shard 0, whose
// rejection record is as deterministic as any other outcome.
func timelineShard(spec Spec, groupOf map[string]int, routeShard map[piconet.FlowID]int, ev TimelineEvent) int {
	switch {
	case ev.AddRoute != nil:
		if g, ok := routeShard[ev.AddRoute.ID]; ok {
			return g
		}
		return routeGroup(spec, groupOf, *ev.AddRoute)
	case ev.RemoveRoute != piconet.None:
		if g, ok := routeShard[ev.RemoveRoute]; ok {
			return g
		}
		return 0
	}
	target := ev.Piconet
	if target == "" {
		target = spec.defaultPiconetName()
	}
	if g, ok := groupOf[target]; ok {
		return g
	}
	return 0
}

// routeOrder lists every route id the run can ever create, in creation
// order (static routes first, then timeline add_route order) — the
// deterministic order of the merged Result.Routes table.
func routeOrder(spec Spec) []piconet.FlowID {
	var order []piconet.FlowID
	seen := make(map[piconet.FlowID]bool)
	add := func(id piconet.FlowID) {
		if !seen[id] {
			seen[id] = true
			order = append(order, id)
		}
	}
	for _, rt := range spec.Routes {
		add(rt.ID)
	}
	for _, ev := range spec.Timeline {
		if ev.AddRoute != nil {
			add(ev.AddRoute.ID)
		}
	}
	return order
}

// runSharded executes a multi-group scenario: one runner — kernel,
// medium, piconets, routes, admission log — per shard group, driven in
// lockstep interference-exchange epochs by sim.ShardSet. Every input of
// every shard (partition, seeds, epoch boundaries, event assignment) is
// derived from the spec alone; `workers` only multiplexes shard
// execution onto goroutines, so results are byte-identical at any
// worker count.
func runSharded(spec Spec, piconets []PiconetSpec, groups [][]string, workers int) (*Result, error) {
	groupOf := make(map[string]int)
	for g, members := range groups {
		for _, n := range members {
			groupOf[n] = g
		}
	}
	runners := make([]*runner, len(groups))
	sims := make([]*sim.Simulator, len(groups))
	for g := range groups {
		r := &runner{
			spec:        spec,
			s:           sim.New(sim.WithSeed(shardSeed(spec.Seed, g))),
			byName:      make(map[string]*piconetRunner),
			defaultName: spec.defaultPiconetName(),
			// Compiled per shard (cheap, pure) so no oracle state is
			// shared across worker goroutines.
			fsched: spec.Faults.Compile(),
		}
		if spec.Interference.Enabled {
			r.medium = radio.NewMedium(spec.Interference.Channels, spec.Interference.Window,
				func() time.Duration { return r.s.Now() })
		}
		runners[g] = r
		sims[g] = r.s
	}

	// Routes live wholly inside the shard owning their hops.
	routeShard := make(map[piconet.FlowID]int)
	perShard := make([][]RouteSpec, len(groups))
	for _, rt := range spec.Routes {
		g := routeGroup(spec, groupOf, rt)
		routeShard[rt.ID] = g
		perShard[g] = append(perShard[g], rt)
	}
	for _, ev := range spec.Timeline {
		// Claim timeline route ids up front so a remove_route (or a
		// duplicate add) resolves to the same shard as the add.
		if ev.AddRoute != nil {
			if _, claimed := routeShard[ev.AddRoute.ID]; !claimed {
				routeShard[ev.AddRoute.ID] = routeGroup(spec, groupOf, *ev.AddRoute)
			}
		}
	}
	for g, r := range runners {
		if err := r.initRoutes(perShard[g]); err != nil {
			return nil, err
		}
	}

	// Build piconets in spec order, each into its owning shard — the
	// same construction (and seq-assignment) order a single-group run
	// uses, restricted to each shard's members.
	for _, ps := range piconets {
		if _, err := runners[groupOf[ps.Name]].buildPiconet(ps, Hooks{}, len(piconets)-1); err != nil {
			return nil, err
		}
	}
	for _, ev := range spec.Timeline {
		ev := ev
		r := runners[timelineShard(spec, groupOf, routeShard, ev)]
		r.s.Schedule(ev.At, func() { r.applyEvent(ev) })
	}
	// Master crashes force a single group; no crash scheduling here.
	for _, r := range runners {
		for _, p := range r.pns {
			if err := p.pn.Start(); err != nil {
				return nil, fmt.Errorf("scenario: %w", err)
			}
		}
	}

	ss := sim.NewShardSet(sims...)
	epoch := spec.Duration
	var exchange func(end time.Duration)
	if spec.Interference.Enabled {
		epoch = interferenceEpoch
		clears := make([]float64, len(runners))
		exchange = func(end time.Duration) {
			// Single-threaded at the barrier, every shard clock at end:
			// snapshot each shard's clear-channel product, then install
			// the product of everyone else's as each shard's foreign
			// interference for the next epoch.
			for g, r := range runners {
				clears[g] = r.medium.ClearFactor(end)
			}
			for g, r := range runners {
				f := 1.0
				for h, c := range clears {
					if h != g {
						f *= c
					}
				}
				r.medium.SetForeignClear(f)
			}
		}
	}
	errs := ss.RunEpochs(spec.Duration, epoch, workers, exchange)
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("scenario: run: %w", err)
		}
	}
	for _, r := range runners {
		for _, p := range r.pns {
			if err := p.pn.Err(); err != nil {
				return nil, fmt.Errorf("scenario: engine %q: %w", p.name, err)
			}
		}
	}
	for _, r := range runners {
		if r.err != nil {
			return nil, fmt.Errorf("scenario: timeline: %w", r.err)
		}
	}
	return mergeResults(spec, piconets, runners, routeOrder(spec)), nil
}

// mergeResults assembles the sharded run's Result in spec order:
// piconets as declared, routes in creation order, and the admission
// logs of all shards interleaved chronologically (records sharing an
// instant keep shard order — the merge is stable). Every ordering input
// is spec-derived, so the merged result is byte-identical at any worker
// count.
func mergeResults(spec Spec, piconets []PiconetSpec, runners []*runner, order []piconet.FlowID) *Result {
	end := runners[0].s.Now()
	res := &Result{Spec: spec, Elapsed: end}
	for _, r := range runners {
		res.Events += r.s.Executed()
		res.Admissions = append(res.Admissions, r.admissions...)
	}
	sort.SliceStable(res.Admissions, func(i, j int) bool {
		return res.Admissions[i].At < res.Admissions[j].At
	})
	for _, ps := range piconets {
		for _, r := range runners {
			if p, ok := r.byName[ps.Name]; ok {
				res.Piconets = append(res.Piconets, p.collect(end))
				break
			}
		}
	}
	byID := make(map[piconet.FlowID]RouteResult)
	for _, r := range runners {
		for _, rr := range r.collectRoutes(end) {
			byID[rr.ID] = rr
		}
	}
	for _, id := range order {
		if rr, ok := byID[id]; ok {
			res.Routes = append(res.Routes, rr)
		}
	}
	rollup(res)
	return res
}
