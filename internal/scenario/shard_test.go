package scenario

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"bluegs/internal/faults"
	"bluegs/internal/piconet"
)

// nopTracer is the minimal Tracer for hook-forcing partition tests.
type nopTracer struct{}

func (nopTracer) Trace(piconet.TraceEntry) {}

// TestKernelShardsPartition pins the shard-partition rule: unbridged
// piconets shard apart, bridge/route/move connectivity merges groups,
// and scatternet-global machinery collapses to a single group (the
// legacy single-kernel path).
func TestKernelShardsPartition(t *testing.T) {
	scatter := func(n int) Spec {
		return Scatternet(ScatternetConfig{Piconets: n, Duration: time.Second})
	}
	cases := []struct {
		name  string
		spec  Spec
		hooks Hooks
		want  [][]string
	}{
		{
			name: "unbridged piconets shard apart",
			spec: scatter(4),
			want: [][]string{{"pn1"}, {"pn2"}, {"pn3"}, {"pn4"}},
		},
		{
			name: "single piconet is single group",
			spec: scatter(1),
			want: [][]string{{"pn1"}},
		},
		{
			name: "bridge residency merges its piconets",
			spec: func() Spec {
				s := scatter(3)
				s.Bridges = []BridgeSpec{{
					Name:   "b1",
					Period: 100 * time.Millisecond,
					Residency: []ResidencySpec{
						{Piconet: "pn1", Slave: 7, Start: 0, End: 50 * time.Millisecond},
						{Piconet: "pn3", Slave: 7, Start: 50 * time.Millisecond, End: 100 * time.Millisecond},
					},
				}}
				return s
			}(),
			want: [][]string{{"pn1", "pn3"}, {"pn2"}},
		},
		{
			name: "move with a named target merges source and destination",
			spec: func() Spec {
				s := scatter(3)
				s.Timeline = append(s.Timeline,
					MoveFlowAt(time.Second, 1, "pn3").For("pn1"))
				return s
			}(),
			want: [][]string{{"pn1", "pn3"}, {"pn2"}},
		},
		{
			name: "move with an open target forces a single group",
			spec: func() Spec {
				s := scatter(3)
				s.Timeline = append(s.Timeline,
					MoveFlowAt(time.Second, 1, "").For("pn1"))
				return s
			}(),
			want: [][]string{{"pn1", "pn2", "pn3"}},
		},
		{
			name: "handoff recovery forces a single group",
			spec: func() Spec {
				s := scatter(3)
				s.Recovery.Policy = faults.PolicyHandoff
				return s
			}(),
			want: [][]string{{"pn1", "pn2", "pn3"}},
		},
		{
			name: "a master crash forces a single group",
			spec: func() Spec {
				s := scatter(3)
				s.Faults.Crashes = []faults.MasterCrash{{Piconet: "pn2", At: time.Second}}
				return s
			}(),
			want: [][]string{{"pn1", "pn2", "pn3"}},
		},
		{
			name: "piconet churn forces a single group",
			spec: func() Spec {
				s := scatter(3)
				s.Timeline = append(s.Timeline, RemovePiconetAt(time.Second, "pn2"))
				return s
			}(),
			want: [][]string{{"pn1", "pn2", "pn3"}},
		},
		{
			name:  "runtime hooks force a single group",
			spec:  scatter(3),
			hooks: Hooks{Tracer: nopTracer{}},
			want:  [][]string{{"pn1", "pn2", "pn3"}},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := kernelShards(tc.spec.WithDefaults(), tc.hooks)
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("kernelShards = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestKernelShardsRouteMergesHops: a route's hop piconets must co-shard
// (the store-and-forward handoff has zero lookahead).
func TestKernelShardsRouteMergesHops(t *testing.T) {
	spec := Bridged(BridgedConfig{Hops: 2, Duration: time.Second})
	spec.Piconets = append(spec.Piconets, PiconetSpec{
		Name: "pn-loose",
		GS: []GSFlow{{
			ID: 1, Slave: 1, Dir: piconet.Up,
			Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176,
		}},
	})
	groups := kernelShards(spec.WithDefaults(), Hooks{})
	want := [][]string{{"pn1", "pn2"}, {"pn-loose"}}
	if !reflect.DeepEqual(groups, want) {
		t.Fatalf("kernelShards = %v, want %v", groups, want)
	}
}

// TestShardSeedDistinct: every shard draws from its own stream, shard 0
// keeps the run seed, and the mix differs from the replication-seed mix
// (shard g of replication 0 must not equal shard 0 of replication g).
func TestShardSeedDistinct(t *testing.T) {
	const base = 12345
	if got := shardSeed(base, 0); got != base {
		t.Fatalf("shardSeed(base, 0) = %d, want the run seed %d", got, base)
	}
	seen := map[int64]int{base: 0}
	for g := 1; g < 64; g++ {
		s := shardSeed(base, g)
		if s == 0 {
			t.Fatalf("shard %d: zero seed", g)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("shard %d collides with shard %d: seed %d", g, prev, s)
		}
		seen[s] = g
	}
}

// shardedProbe is the worker-count determinism workload: several
// unbridged piconets coupled through interference, online GS arrivals
// exercising the admission log, and a mid-run flow removal.
func shardedProbe(workers int) (*Result, error) {
	spec := Scatternet(ScatternetConfig{
		Piconets: 4,
		OnlineGS: 1,
		Duration: 3 * time.Second,
	})
	spec.Timeline = append(spec.Timeline,
		RemoveAt(2*time.Second, 1).For("pn2"))
	spec.KernelWorkers = workers
	return Run(spec)
}

// TestShardedByteIdenticalAcrossWorkers is the tentpole's acceptance
// spec at scenario level: merged metrics, report tables and the
// chronological admission log must be byte-identical at any worker
// count, and Result.Spec must never leak the worker count.
func TestShardedByteIdenticalAcrossWorkers(t *testing.T) {
	ref, err := shardedProbe(1)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	if len(ref.Piconets) != 4 {
		t.Fatalf("probe ran %d piconets, want 4", len(ref.Piconets))
	}
	if len(ref.Admissions) == 0 {
		t.Fatal("probe produced no admission records")
	}
	refReport := ref.Report().String()
	for _, workers := range []int{2, runtime.GOMAXPROCS(0), 8, 0} {
		got, err := shardedProbe(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Spec.KernelWorkers != 0 {
			t.Fatalf("workers=%d: Result.Spec.KernelWorkers = %d, want 0",
				workers, got.Spec.KernelWorkers)
		}
		if got.Events != ref.Events {
			t.Fatalf("workers=%d: %d kernel events, want %d", workers, got.Events, ref.Events)
		}
		if r := got.Report().String(); r != refReport {
			t.Fatalf("workers=%d: report diverged from workers=1:\n%s\n--- want ---\n%s",
				workers, r, refReport)
		}
		if !reflect.DeepEqual(got.Admissions, ref.Admissions) {
			t.Fatalf("workers=%d: admission log diverged:\n%+v\nwant:\n%+v",
				workers, got.Admissions, ref.Admissions)
		}
		if !reflect.DeepEqual(got.Routes, ref.Routes) {
			t.Fatalf("workers=%d: route table diverged", workers)
		}
	}
}

// TestShardedRoutedScatternetAcrossWorkers: a spec mixing a routed
// (single-shard) pair with independent piconets still merges
// deterministically at any worker count — including the route table.
func TestShardedRoutedScatternetAcrossWorkers(t *testing.T) {
	build := func(workers int) (*Result, error) {
		spec := Bridged(BridgedConfig{Hops: 2, Duration: 2 * time.Second})
		extra := Scatternet(ScatternetConfig{Piconets: 2, Duration: spec.Duration})
		for i := range extra.Piconets {
			ps := extra.Piconets[i]
			ps.Name = "x" + ps.Name
			spec.Piconets = append(spec.Piconets, ps)
		}
		spec.Interference = InterferenceSpec{Enabled: true}
		spec.KernelWorkers = workers
		return Run(spec)
	}
	ref, err := build(1)
	if err != nil {
		t.Fatalf("workers=1: %v", err)
	}
	if len(ref.Routes) == 0 {
		t.Fatal("probe produced no route results")
	}
	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		got, err := build(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Report().String() != ref.Report().String() {
			t.Fatalf("workers=%d: report diverged from workers=1", workers)
		}
		if !reflect.DeepEqual(got.Routes, ref.Routes) {
			t.Fatalf("workers=%d: route table diverged", workers)
		}
	}
}

// TestShardedFingerprintIgnoresWorkers: KernelWorkers must never enter
// the canonical rendering — the fingerprint (and so every cache key) is
// identical at any worker count.
func TestShardedFingerprintIgnoresWorkers(t *testing.T) {
	spec := Scatternet(ScatternetConfig{Piconets: 3, Duration: time.Second})
	ref := spec.Fingerprint()
	for _, workers := range []int{1, 2, 16} {
		s := spec
		s.KernelWorkers = workers
		if got := s.Fingerprint(); got != ref {
			t.Fatalf("KernelWorkers=%d changed the fingerprint: %s vs %s", workers, got, ref)
		}
	}
}

// TestShardedRaceHammer drives the sharded runner hot with the maximum
// worker multiplexing — the -race acceptance test for the scenario-level
// epoch exchange (medium snapshot swap) and merge paths.
func TestShardedRaceHammer(t *testing.T) {
	spec := Scatternet(ScatternetConfig{
		Piconets: 6,
		OnlineGS: 1,
		Duration: 1500 * time.Millisecond,
	})
	spec.KernelWorkers = runtime.GOMAXPROCS(0) + 2
	ref, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if got.Report().String() != ref.Report().String() {
			t.Fatalf("iteration %d: report diverged", i)
		}
	}
}
