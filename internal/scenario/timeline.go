package scenario

import (
	"fmt"
	"time"

	"bluegs/internal/admission"
	"bluegs/internal/piconet"
	"bluegs/internal/sco"
)

// Timeline operation names (TimelineEvent.Op, AdmissionRecord.Op).
const (
	OpAddGS      = "add-gs"
	OpAddBE      = "add-be"
	OpRemoveFlow = "remove-flow"
	OpAddSCO     = "add-sco"
	OpDropSCO    = "drop-sco"
)

// TimelineEvent is one scheduled mid-run change of a scenario. Exactly one
// operation field must be set; events apply in slice order when they share
// an instant. Build events with the *At constructors.
type TimelineEvent struct {
	// At is the simulated time of the change, relative to the run start.
	At time.Duration
	// AddGS requests admission of a Guaranteed Service flow at At: the
	// paper's Fig. 3 admission test runs against the then-current flow
	// set and either installs the flow — re-planning every stream's
	// polling — or records a rejection in Result.Admissions.
	AddGS *GSFlow
	// AddBE installs a best-effort flow (no admission test; best effort
	// takes whatever is left over).
	AddBE *BEFlow
	// Remove retires a flow (GS or BE): its source stops, queued packets
	// are dropped, and — for GS — its reserved bandwidth is released and
	// the remaining flows re-planned. Removing a flow whose admission
	// was rejected records a no-op.
	Remove piconet.FlowID
	// AddSCO requests a synchronous voice link. It is rejected when the
	// link does not fit the piconet's SCO capacity or when the admitted
	// Guaranteed Service set could no longer be scheduled around the new
	// reservations.
	AddSCO *SCOLinkSpec
	// DropSCO releases the slave's synchronous link.
	DropSCO piconet.SlaveID
}

// Op names the event's operation ("" for an invalid event).
func (e TimelineEvent) Op() string {
	switch {
	case e.AddGS != nil:
		return OpAddGS
	case e.AddBE != nil:
		return OpAddBE
	case e.Remove != piconet.None:
		return OpRemoveFlow
	case e.AddSCO != nil:
		return OpAddSCO
	case e.DropSCO != 0:
		return OpDropSCO
	}
	return ""
}

// ops counts the set operation fields (a valid event has exactly one).
func (e TimelineEvent) ops() int {
	n := 0
	if e.AddGS != nil {
		n++
	}
	if e.AddBE != nil {
		n++
	}
	if e.Remove != piconet.None {
		n++
	}
	if e.AddSCO != nil {
		n++
	}
	if e.DropSCO != 0 {
		n++
	}
	return n
}

// AddGSAt schedules a Guaranteed Service flow arrival.
func AddGSAt(at time.Duration, g GSFlow) TimelineEvent {
	return TimelineEvent{At: at, AddGS: &g}
}

// AddBEAt schedules a best-effort flow arrival.
func AddBEAt(at time.Duration, b BEFlow) TimelineEvent {
	return TimelineEvent{At: at, AddBE: &b}
}

// RemoveAt schedules a flow departure.
func RemoveAt(at time.Duration, id piconet.FlowID) TimelineEvent {
	return TimelineEvent{At: at, Remove: id}
}

// AddSCOAt schedules a synchronous voice link arrival.
func AddSCOAt(at time.Duration, l SCOLinkSpec) TimelineEvent {
	return TimelineEvent{At: at, AddSCO: &l}
}

// DropSCOAt schedules a synchronous voice link departure.
func DropSCOAt(at time.Duration, slave piconet.SlaveID) TimelineEvent {
	return TimelineEvent{At: at, DropSCO: slave}
}

// AdmissionRecord is one entry of a run's online admission log: the
// outcome of one timeline event.
type AdmissionRecord struct {
	// At is the simulated time the event applied.
	At time.Duration
	// Op is the operation (see the Op* constants).
	Op string
	// Flow is the affected flow (flow operations only).
	Flow piconet.FlowID
	// Slave is the affected slave.
	Slave piconet.SlaveID
	// Accepted reports whether the operation took effect.
	Accepted bool
	// Bound and Rate are the admitted Guaranteed Service contract at
	// admission time (add-gs only).
	Bound time.Duration
	Rate  float64
	// Reason explains a rejection.
	Reason string
}

// validateTimeline statically checks a timeline against the spec: one
// operation per event, non-negative times, unique flow ids across the
// static sets and all additions, and removals that reference a flow the
// scenario can ever install.
func validateTimeline(spec Spec) error {
	known := make(map[piconet.FlowID]bool, len(spec.GS)+len(spec.BE))
	for _, g := range spec.GS {
		known[g.ID] = true
	}
	for _, b := range spec.BE {
		known[b.ID] = true
	}
	for i, ev := range spec.Timeline {
		if n := ev.ops(); n != 1 {
			return fmt.Errorf("%w: timeline[%d] sets %d operations (want exactly 1)", ErrBadSpec, i, n)
		}
		if ev.At < 0 {
			return fmt.Errorf("%w: timeline[%d] at %v is negative", ErrBadSpec, i, ev.At)
		}
		switch {
		case ev.AddGS != nil:
			if ev.AddGS.ID == piconet.None {
				return fmt.Errorf("%w: timeline[%d] add-gs with zero flow id", ErrBadSpec, i)
			}
			if known[ev.AddGS.ID] {
				return fmt.Errorf("%w: timeline[%d] duplicate flow id %d", ErrBadSpec, i, ev.AddGS.ID)
			}
			known[ev.AddGS.ID] = true
		case ev.AddBE != nil:
			if ev.AddBE.ID == piconet.None {
				return fmt.Errorf("%w: timeline[%d] add-be with zero flow id", ErrBadSpec, i)
			}
			if known[ev.AddBE.ID] {
				return fmt.Errorf("%w: timeline[%d] duplicate flow id %d", ErrBadSpec, i, ev.AddBE.ID)
			}
			known[ev.AddBE.ID] = true
		case ev.Remove != piconet.None:
			if !known[ev.Remove] {
				return fmt.Errorf("%w: timeline[%d] removes unknown flow %d", ErrBadSpec, i, ev.Remove)
			}
		case ev.AddSCO != nil:
			if !ev.AddSCO.Type.IsSCO() {
				return fmt.Errorf("%w: timeline[%d] SCO type %v", ErrBadSpec, i, ev.AddSCO.Type)
			}
		}
	}
	return nil
}

// reject logs a refused timeline operation.
func (r *runner) reject(op string, flow piconet.FlowID, slave piconet.SlaveID, reason string) {
	r.admissions = append(r.admissions, AdmissionRecord{
		At: r.s.Now(), Op: op, Flow: flow, Slave: slave, Reason: reason,
	})
}

// accept logs an applied timeline operation.
func (r *runner) accept(rec AdmissionRecord) {
	rec.At = r.s.Now()
	rec.Accepted = true
	r.admissions = append(r.admissions, rec)
}

// applyEvent dispatches one timeline event at its simulated time. Spec
// errors (which static validation should have caught) are fatal: they
// stop the simulation and fail the run. Admission refusals are recorded
// outcomes, not errors.
func (r *runner) applyEvent(ev TimelineEvent) {
	if r.err != nil {
		return
	}
	switch {
	case ev.AddGS != nil:
		r.applyAddGS(*ev.AddGS)
	case ev.AddBE != nil:
		r.applyAddBE(*ev.AddBE)
	case ev.Remove != piconet.None:
		r.applyRemove(ev.Remove)
	case ev.AddSCO != nil:
		r.applyAddSCO(*ev.AddSCO)
	case ev.DropSCO != 0:
		r.applyDropSCO(ev.DropSCO)
	}
	if r.err != nil {
		r.s.Stop()
	}
}

// applyAddGS runs the paper's online admission test for a mid-run GS
// arrival and installs the flow on success.
func (r *runner) applyAddGS(g GSFlow) {
	pf, err := r.ctrl.AdmitForDelay(admission.DelayRequest{
		Request: admission.Request{
			ID:      g.ID,
			Slave:   g.Slave,
			Dir:     g.Dir,
			Spec:    g.Spec(),
			Allowed: r.allowedFor(g.Allowed),
		},
		Target: r.spec.DelayTarget,
	})
	if err != nil {
		r.reject(OpAddGS, g.ID, g.Slave, err.Error())
		return
	}
	if r.err = r.addSlave(g.Slave); r.err != nil {
		return
	}
	if r.err = r.pn.AddFlow(piconet.FlowConfig{
		ID: g.ID, Slave: g.Slave, Dir: g.Dir,
		Class: piconet.Guaranteed, Allowed: r.allowedFor(g.Allowed),
	}); r.err != nil {
		return
	}
	if r.err = r.sched.Replan(r.ctrl.Flows()); r.err != nil {
		return
	}
	r.noteBounds()
	r.attachGSSource(g)
	r.pn.Kick()
	r.accept(AdmissionRecord{
		Op: OpAddGS, Flow: g.ID, Slave: g.Slave,
		Bound: pf.Bound, Rate: pf.Request.Rate,
	})
}

// applyAddBE installs a mid-run best-effort arrival (no admission test).
func (r *runner) applyAddBE(b BEFlow) {
	if r.err = r.addSlave(b.Slave); r.err != nil {
		return
	}
	if r.err = r.pn.AddFlow(piconet.FlowConfig{
		ID: b.ID, Slave: b.Slave, Dir: b.Dir,
		Class: piconet.BestEffort, Allowed: r.allowedFor(b.Allowed),
	}); r.err != nil {
		return
	}
	r.sched.RefreshBE()
	r.attachBESource(b)
	r.pn.Kick()
	r.accept(AdmissionRecord{Op: OpAddBE, Flow: b.ID, Slave: b.Slave})
}

// applyRemove retires a flow: its source stops, queued packets drop, and
// a Guaranteed Service flow's bandwidth is released by re-planning.
func (r *runner) applyRemove(id piconet.FlowID) {
	src, installed := r.sources[id]
	if !installed {
		// The flow's admission was rejected (or it was already
		// removed): the departure has nothing to retire.
		r.reject(OpRemoveFlow, id, 0, "flow not installed")
		return
	}
	r.s.Cancel(src.ev)
	delete(r.sources, id)
	cfg, _ := r.pn.FlowConfig(id)
	if r.err = r.pn.RetireFlow(id); r.err != nil {
		return
	}
	if _, isGS := r.ctrl.Find(id); isGS {
		if r.err = r.ctrl.Remove(id); r.err != nil {
			return
		}
		if r.err = r.sched.Replan(r.ctrl.Flows()); r.err != nil {
			return
		}
		r.noteBounds()
	} else {
		r.sched.RefreshBE()
	}
	r.accept(AdmissionRecord{Op: OpRemoveFlow, Flow: id, Slave: cfg.Slave})
}

// applyAddSCO reserves a mid-run voice link if both the piconet's SCO
// capacity and the admitted Guaranteed Service contracts allow it. Every
// check runs before any state changes, so a refused call leaves no trace
// (no phantom slave registration, no half-installed reservation).
func (r *runner) applyAddSCO(l SCOLinkSpec) {
	ch, err := sco.NewChannel(l.Type)
	if err != nil {
		r.reject(OpAddSCO, 0, l.Slave, err.Error())
		return
	}
	if err := r.pn.CheckSCOLink(l.Slave, l.Type); err != nil {
		r.reject(OpAddSCO, 0, l.Slave, err.Error())
		return
	}
	if err := r.ctrl.SetSCOLinks(append(r.ctrl.SCOLinks(), ch)); err != nil {
		// The GS set no longer fits around the reservations: the call
		// is refused (SetSCOLinks left the controller unchanged).
		r.reject(OpAddSCO, 0, l.Slave, err.Error())
		return
	}
	if r.err = r.addSlave(l.Slave); r.err != nil {
		return
	}
	if r.err = r.pn.AddSCOLink(l.Slave, l.Type); r.err != nil {
		return
	}
	if r.err = r.sched.Replan(r.ctrl.Flows()); r.err != nil {
		return
	}
	r.noteBounds()
	r.accept(AdmissionRecord{Op: OpAddSCO, Slave: l.Slave})
}

// applyDropSCO releases a voice link and the admission headroom it held.
func (r *runner) applyDropSCO(slave piconet.SlaveID) {
	if err := r.pn.DropSCOLink(slave); err != nil {
		r.reject(OpDropSCO, 0, slave, err.Error())
		return
	}
	links := r.ctrl.SCOLinks()
	if len(links) > 0 {
		// Links are interchangeable at the admission level (one
		// aggregate stream of count×type): release any one.
		if r.err = r.ctrl.SetSCOLinks(links[:len(links)-1]); r.err != nil {
			return
		}
		if r.err = r.sched.Replan(r.ctrl.Flows()); r.err != nil {
			return
		}
		r.noteBounds()
	}
	r.accept(AdmissionRecord{Op: OpDropSCO, Slave: slave})
}
