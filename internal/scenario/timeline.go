package scenario

import (
	"fmt"
	"time"

	"bluegs/internal/piconet"
)

// Timeline operation names (TimelineEvent.Op, AdmissionRecord.Op).
const (
	OpAddGS         = "add-gs"
	OpAddBE         = "add-be"
	OpRemoveFlow    = "remove-flow"
	OpAddSCO        = "add-sco"
	OpDropSCO       = "drop-sco"
	OpAddPiconet    = "add-piconet"
	OpRemovePiconet = "remove-piconet"
	// OpRederate records an interference-aware admission re-derate of one
	// surviving piconet after the scatternet changed size (no timeline
	// event constructs it: piconet churn emits it as a side effect when
	// Spec.InterferenceAwareAdmission is on). A rejected rederate means
	// the new collision estimate cannot be served by the piconet's
	// existing contracts — its bounds stay at the previous derate.
	OpRederate = "rederate"
	// OpHandoff is the make-before-break move of a GS flow to another
	// piconet: admitted at the target (interference-derated) before
	// anything is released at the source. Constructed by a move_flow
	// timeline event or emitted by the handoff recovery policy.
	OpHandoff = "move-flow"
	// OpSuspend records the supervision timeout declaring a flow's link
	// dead (no timeline event constructs it). The record's Latency is the
	// detection latency: link-death declaration minus first failed poll.
	OpSuspend = "suspend-flow"
	// OpDegrade records the graceful-degradation renegotiation of a
	// suspended flow at a looser delay bound (no timeline event
	// constructs it). A rejected degrade leaves the flow suspended.
	OpDegrade = "degrade-flow"
	// OpCrash records a master crash from the fault plan (no timeline
	// event constructs it): the piconet halts and its flows are orphaned.
	OpCrash = "master-crash"
	// OpAddRoute requests admission of an end-to-end route: every hop runs
	// the admission test at its share of the end-to-end budget (derated by
	// its bridge's residency duty cycle), atomically — a refusal at any
	// hop rolls the earlier hops back. Accepted routes log one record per
	// hop; a rejection logs the failing hop.
	OpAddRoute = "add-route"
	// OpRemoveRoute retires a route end-to-end: the source stops and every
	// hop's reservation is released (one record per hop).
	OpRemoveRoute = "remove-route"
	// OpRenegotiate re-runs the admission test of a healthy Guaranteed
	// Service flow at a new delay target mid-run. The negotiation is
	// atomic: a refusal leaves the old contract untouched.
	OpRenegotiate = "renegotiate-flow"
)

// MoveFlow is the payload of a move_flow timeline event: hand the flow
// off to the named piconet ("" resolves like RecoverySpec.HandoffTarget —
// the spec's configured target, else the first other live piconet).
type MoveFlow struct {
	Flow piconet.FlowID
	To   string
}

// RenegotiateFlow is the payload of a renegotiate_flow timeline event:
// re-admit the flow at the new delay target (tighter or looser).
type RenegotiateFlow struct {
	Flow   piconet.FlowID
	Target time.Duration
}

// TimelineEvent is one scheduled mid-run change of a scenario. Exactly one
// operation field must be set; events apply in slice order when they share
// an instant. Build events with the *At constructors.
//
// Piconet addressing: in scatternet specs the Piconet field names the
// piconet a flow or SCO operation targets; an empty field targets the
// first piconet (which is also the only piconet of a flat spec, so flat
// timelines need no addressing at all). AddPiconet and RemovePiconet act
// on the scatternet itself and ignore the Piconet field.
type TimelineEvent struct {
	// At is the simulated time of the change, relative to the run start.
	At time.Duration
	// Piconet addresses the target piconet of a flow or SCO operation by
	// name ("" means the spec's first piconet).
	Piconet string
	// AddGS requests admission of a Guaranteed Service flow at At: the
	// paper's Fig. 3 admission test runs against the then-current flow
	// set of the target piconet and either installs the flow —
	// re-planning every stream's polling — or records a rejection in
	// Result.Admissions.
	AddGS *GSFlow
	// AddBE installs a best-effort flow (no admission test; best effort
	// takes whatever is left over).
	AddBE *BEFlow
	// Remove retires a flow (GS or BE) of the target piconet: its source
	// stops, queued packets are dropped, and — for GS — its reserved
	// bandwidth is released and the remaining flows re-planned. Removing
	// a flow whose admission was rejected records a no-op.
	Remove piconet.FlowID
	// AddSCO requests a synchronous voice link. It is rejected when the
	// link does not fit the piconet's SCO capacity or when the admitted
	// Guaranteed Service set could no longer be scheduled around the new
	// reservations.
	AddSCO *SCOLinkSpec
	// DropSCO releases the slave's synchronous link.
	DropSCO piconet.SlaveID
	// AddPiconet brings a whole new piconet into the scatternet at At:
	// its static GS set is planned offline (clamped like a run-start
	// plan), its master starts polling, and from then on timeline events
	// may target it by name. Names must be unique across the run.
	AddPiconet *PiconetSpec
	// RemovePiconet takes the named piconet out of service: its sources
	// stop, its master polls no more, and — with interference enabled —
	// it stops colliding with the others. Its statistics stay in the
	// result, final as of the removal.
	RemovePiconet string
	// Move hands a Guaranteed Service flow of the target piconet off to
	// another piconet make-before-break: the destination runs the
	// admission test (at its own interference derate) and installs the
	// flow before the source releases its reservation, so a refusal
	// leaves the flow untouched at the source.
	Move *MoveFlow
	// AddRoute requests admission of an end-to-end route across the
	// scatternet. Like AddPiconet/RemovePiconet it acts on the scatternet
	// itself (the route names its own source piconet) and ignores the
	// Piconet field.
	AddRoute *RouteSpec
	// RemoveRoute retires the route with this flow id end-to-end.
	RemoveRoute piconet.FlowID
	// Renegotiate re-admits a Guaranteed Service flow of the target
	// piconet at a new delay target. Routed hop flows are refused: their
	// targets follow from the route's end-to-end budget.
	Renegotiate *RenegotiateFlow
}

// Op names the event's operation ("" for an invalid event).
func (e TimelineEvent) Op() string {
	switch {
	case e.AddGS != nil:
		return OpAddGS
	case e.AddBE != nil:
		return OpAddBE
	case e.Remove != piconet.None:
		return OpRemoveFlow
	case e.AddSCO != nil:
		return OpAddSCO
	case e.DropSCO != 0:
		return OpDropSCO
	case e.AddPiconet != nil:
		return OpAddPiconet
	case e.RemovePiconet != "":
		return OpRemovePiconet
	case e.Move != nil:
		return OpHandoff
	case e.AddRoute != nil:
		return OpAddRoute
	case e.RemoveRoute != piconet.None:
		return OpRemoveRoute
	case e.Renegotiate != nil:
		return OpRenegotiate
	}
	return ""
}

// ops counts the set operation fields (a valid event has exactly one).
func (e TimelineEvent) ops() int {
	n := 0
	if e.AddGS != nil {
		n++
	}
	if e.AddBE != nil {
		n++
	}
	if e.Remove != piconet.None {
		n++
	}
	if e.AddSCO != nil {
		n++
	}
	if e.DropSCO != 0 {
		n++
	}
	if e.AddPiconet != nil {
		n++
	}
	if e.RemovePiconet != "" {
		n++
	}
	if e.Move != nil {
		n++
	}
	if e.AddRoute != nil {
		n++
	}
	if e.RemoveRoute != piconet.None {
		n++
	}
	if e.Renegotiate != nil {
		n++
	}
	return n
}

// subject returns the flow and slave a flow/SCO operation acts on (zero
// where the operation has none) — the identifiers a rejection record
// carries when the event cannot even reach its piconet.
func (e TimelineEvent) subject() (piconet.FlowID, piconet.SlaveID) {
	switch {
	case e.AddGS != nil:
		return e.AddGS.ID, e.AddGS.Slave
	case e.AddBE != nil:
		return e.AddBE.ID, e.AddBE.Slave
	case e.Remove != piconet.None:
		return e.Remove, 0
	case e.AddSCO != nil:
		return piconet.None, e.AddSCO.Slave
	case e.DropSCO != 0:
		return piconet.None, e.DropSCO
	case e.Move != nil:
		return e.Move.Flow, 0
	case e.AddRoute != nil:
		return e.AddRoute.ID, e.AddRoute.Slave
	case e.RemoveRoute != piconet.None:
		return e.RemoveRoute, 0
	case e.Renegotiate != nil:
		return e.Renegotiate.Flow, 0
	}
	return piconet.None, 0
}

// For returns the event readdressed to the named piconet.
func (e TimelineEvent) For(piconet string) TimelineEvent {
	e.Piconet = piconet
	return e
}

// AddGSAt schedules a Guaranteed Service flow arrival.
func AddGSAt(at time.Duration, g GSFlow) TimelineEvent {
	return TimelineEvent{At: at, AddGS: &g}
}

// AddBEAt schedules a best-effort flow arrival.
func AddBEAt(at time.Duration, b BEFlow) TimelineEvent {
	return TimelineEvent{At: at, AddBE: &b}
}

// RemoveAt schedules a flow departure.
func RemoveAt(at time.Duration, id piconet.FlowID) TimelineEvent {
	return TimelineEvent{At: at, Remove: id}
}

// AddSCOAt schedules a synchronous voice link arrival.
func AddSCOAt(at time.Duration, l SCOLinkSpec) TimelineEvent {
	return TimelineEvent{At: at, AddSCO: &l}
}

// DropSCOAt schedules a synchronous voice link departure.
func DropSCOAt(at time.Duration, slave piconet.SlaveID) TimelineEvent {
	return TimelineEvent{At: at, DropSCO: slave}
}

// AddPiconetAt schedules a piconet joining the scatternet.
func AddPiconetAt(at time.Duration, ps PiconetSpec) TimelineEvent {
	return TimelineEvent{At: at, AddPiconet: &ps}
}

// RemovePiconetAt schedules a piconet leaving the scatternet.
func RemovePiconetAt(at time.Duration, name string) TimelineEvent {
	return TimelineEvent{At: at, RemovePiconet: name}
}

// MoveFlowAt schedules a make-before-break handoff of a Guaranteed
// Service flow to another piconet (to "" picks the configured or first
// other live piconet). Address the source piconet with For.
func MoveFlowAt(at time.Duration, flow piconet.FlowID, to string) TimelineEvent {
	return TimelineEvent{At: at, Move: &MoveFlow{Flow: flow, To: to}}
}

// AddRouteAt schedules an end-to-end route arrival.
func AddRouteAt(at time.Duration, rt RouteSpec) TimelineEvent {
	return TimelineEvent{At: at, AddRoute: &rt}
}

// RemoveRouteAt schedules a route departure.
func RemoveRouteAt(at time.Duration, id piconet.FlowID) TimelineEvent {
	return TimelineEvent{At: at, RemoveRoute: id}
}

// RenegotiateAt schedules a mid-run delay-target renegotiation of a
// Guaranteed Service flow. Address the flow's piconet with For.
func RenegotiateAt(at time.Duration, flow piconet.FlowID, target time.Duration) TimelineEvent {
	return TimelineEvent{At: at, Renegotiate: &RenegotiateFlow{Flow: flow, Target: target}}
}

// AdmissionRecord is one entry of a run's online admission log: the
// outcome of one timeline event.
type AdmissionRecord struct {
	// At is the simulated time the event applied.
	At time.Duration
	// Op is the operation (see the Op* constants).
	Op string
	// Piconet names the piconet the operation acted on ("" in flat
	// single-piconet runs).
	Piconet string
	// Flow is the affected flow (flow operations only).
	Flow piconet.FlowID
	// Slave is the affected slave.
	Slave piconet.SlaveID
	// Accepted reports whether the operation took effect.
	Accepted bool
	// Bound and Rate are the admitted Guaranteed Service contract at
	// admission time (add-gs only).
	Bound time.Duration
	Rate  float64
	// Reason explains a rejection (and, for accepted handoffs, names the
	// source piconet).
	Reason string
	// Latency is the supervision detection latency: how long the link had
	// been failing when it was declared dead (suspend-flow only).
	Latency time.Duration
	// Route and Hop tie the record to one hop of an end-to-end route
	// (route operations only: Hop counts from 1 in path order).
	Route string
	Hop   int
}

// validateTimeline statically checks a timeline against the spec: one
// operation per event, non-negative times, piconet targets that name a
// piconet the scenario can ever create, unique flow ids per piconet
// across the static sets and all additions, and removals that reference
// a flow the scenario can ever install there.
func validateTimeline(spec Spec) error {
	// Piconet names the scenario can ever have: the initial set plus
	// every add_piconet. Whether a name is live when an event fires is a
	// runtime question (recorded as a rejection, like a full piconet
	// refusing a flow) — what validation rejects is a name that can
	// never exist.
	def := spec.defaultPiconetName()
	known := make(map[string]map[piconet.FlowID]bool)
	for _, ps := range spec.piconetSpecs() {
		known[ps.Name] = ps.flowIDSet()
	}
	// Static routes claim their flow id in every traversed piconet (and in
	// the route id space), so timeline flows cannot collide with a hop.
	routeIDs := make(map[piconet.FlowID]bool)
	for _, rt := range spec.Routes {
		routeIDs[rt.ID] = true
		hops, err := spec.routeHops(rt)
		if err != nil {
			continue // validateBridges already rejected the spec
		}
		for _, h := range hops {
			if flows, ok := known[h.Piconet]; ok {
				if flows[rt.ID] {
					return fmt.Errorf("%w: route %d: flow id %d already used in piconet %q",
						ErrBadSpec, rt.ID, rt.ID, h.Piconet)
				}
				flows[rt.ID] = true
			}
		}
	}
	pnSet := func() map[string]bool {
		pns := make(map[string]bool, len(known))
		for name := range known {
			pns[name] = true
		}
		return pns
	}
	for i, ev := range spec.Timeline {
		if n := ev.ops(); n != 1 {
			return fmt.Errorf("%w: timeline[%d] sets %d operations (want exactly 1)", ErrBadSpec, i, n)
		}
		if ev.At < 0 {
			return fmt.Errorf("%w: timeline[%d] at %v is negative", ErrBadSpec, i, ev.At)
		}
		// Scatternet operations first: they change the name set.
		switch {
		case ev.AddPiconet != nil:
			ps := *ev.AddPiconet
			if ps.Name == "" {
				return fmt.Errorf("%w: timeline[%d] add-piconet with no name", ErrBadSpec, i)
			}
			if _, dup := known[ps.Name]; dup {
				return fmt.Errorf("%w: timeline[%d] duplicate piconet name %q", ErrBadSpec, i, ps.Name)
			}
			if err := ps.validateFlows(); err != nil {
				return fmt.Errorf("timeline[%d] add-piconet %q: %w", i, ps.Name, err)
			}
			known[ps.Name] = ps.flowIDSet()
			continue
		case ev.RemovePiconet != "":
			if _, ok := known[ev.RemovePiconet]; !ok {
				return fmt.Errorf("%w: timeline[%d] removes unknown piconet %q", ErrBadSpec, i, ev.RemovePiconet)
			}
			continue
		case ev.AddRoute != nil:
			// Routes are scatternet-level (the route names its own source
			// piconet); validateRoute claims the id across all hops.
			if spec.BatchTraffic {
				return fmt.Errorf("%w: timeline[%d]: routes use the per-packet source path; BatchTraffic is incompatible with add_route", ErrBadSpec, i)
			}
			if err := spec.validateRoute(*ev.AddRoute, pnSet(), routeIDs, known); err != nil {
				return fmt.Errorf("timeline[%d]: %w", i, err)
			}
			continue
		case ev.RemoveRoute != piconet.None:
			if !routeIDs[ev.RemoveRoute] {
				return fmt.Errorf("%w: timeline[%d] removes unknown route %d", ErrBadSpec, i, ev.RemoveRoute)
			}
			continue
		}
		// Flow and SCO operations: resolve the target piconet.
		target := ev.Piconet
		if target == "" {
			target = def
		}
		flows, ok := known[target]
		if !ok {
			return fmt.Errorf("%w: timeline[%d] targets unknown piconet %q", ErrBadSpec, i, target)
		}
		switch {
		case ev.AddGS != nil:
			if ev.AddGS.ID == piconet.None {
				return fmt.Errorf("%w: timeline[%d] add-gs with zero flow id", ErrBadSpec, i)
			}
			if flows[ev.AddGS.ID] {
				return fmt.Errorf("%w: timeline[%d] duplicate flow id %d", ErrBadSpec, i, ev.AddGS.ID)
			}
			flows[ev.AddGS.ID] = true
		case ev.AddBE != nil:
			if ev.AddBE.ID == piconet.None {
				return fmt.Errorf("%w: timeline[%d] add-be with zero flow id", ErrBadSpec, i)
			}
			if flows[ev.AddBE.ID] {
				return fmt.Errorf("%w: timeline[%d] duplicate flow id %d", ErrBadSpec, i, ev.AddBE.ID)
			}
			flows[ev.AddBE.ID] = true
		case ev.Remove != piconet.None:
			if !flows[ev.Remove] {
				return fmt.Errorf("%w: timeline[%d] removes unknown flow %d", ErrBadSpec, i, ev.Remove)
			}
		case ev.AddSCO != nil:
			if !ev.AddSCO.Type.IsSCO() {
				return fmt.Errorf("%w: timeline[%d] SCO type %v", ErrBadSpec, i, ev.AddSCO.Type)
			}
		case ev.Move != nil:
			if ev.Move.Flow == piconet.None {
				return fmt.Errorf("%w: timeline[%d] move-flow with zero flow id", ErrBadSpec, i)
			}
			if !flows[ev.Move.Flow] {
				return fmt.Errorf("%w: timeline[%d] moves unknown flow %d", ErrBadSpec, i, ev.Move.Flow)
			}
			if ev.Move.To != "" {
				if ev.Move.To == target {
					return fmt.Errorf("%w: timeline[%d] moves flow %d to its own piconet", ErrBadSpec, i, ev.Move.Flow)
				}
				toFlows, ok := known[ev.Move.To]
				if !ok {
					return fmt.Errorf("%w: timeline[%d] moves flow to unknown piconet %q", ErrBadSpec, i, ev.Move.To)
				}
				if toFlows[ev.Move.Flow] {
					return fmt.Errorf("%w: timeline[%d] duplicate flow id %d at %q", ErrBadSpec, i, ev.Move.Flow, ev.Move.To)
				}
				toFlows[ev.Move.Flow] = true
			}
			// The id stays claimed at the source too: its retired remnant
			// keeps the id unusable there.
		case ev.Renegotiate != nil:
			if ev.Renegotiate.Flow == piconet.None {
				return fmt.Errorf("%w: timeline[%d] renegotiate-flow with zero flow id", ErrBadSpec, i)
			}
			if !flows[ev.Renegotiate.Flow] {
				return fmt.Errorf("%w: timeline[%d] renegotiates unknown flow %d", ErrBadSpec, i, ev.Renegotiate.Flow)
			}
			if ev.Renegotiate.Target <= 0 {
				return fmt.Errorf("%w: timeline[%d] renegotiate-flow with non-positive target", ErrBadSpec, i)
			}
		}
	}
	return nil
}
