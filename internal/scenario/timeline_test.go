package scenario

import (
	"errors"
	"testing"
	"time"

	"bluegs/internal/baseband"
	"bluegs/internal/piconet"
)

func TestTimelineValidation(t *testing.T) {
	base := func() Spec {
		return Spec{
			BE:       []BEFlow{{ID: 1, Slave: 1, Dir: piconet.Up, RateKbps: 10, PacketSize: 100}},
			Duration: time.Second,
		}
	}
	gs := GSFlow{ID: 2, Slave: 2, Dir: piconet.Up, Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176}
	cases := map[string]TimelineEvent{
		"no op":       {At: time.Second},
		"two ops":     {At: time.Second, AddGS: &gs, Remove: 1},
		"negative at": {At: -time.Second, AddGS: &gs},
		"zero gs id":  AddGSAt(time.Second, GSFlow{Slave: 1, Dir: piconet.Up, Interval: time.Millisecond, MinSize: 1, MaxSize: 1}),
		"dup id":      AddGSAt(time.Second, GSFlow{ID: 1, Slave: 1, Dir: piconet.Up, Interval: time.Millisecond, MinSize: 1, MaxSize: 1}),
		"unknown rm":  RemoveAt(time.Second, 99),
		"acl as sco":  AddSCOAt(time.Second, SCOLinkSpec{Slave: 1, Type: baseband.TypeDH1}),
	}
	for name, ev := range cases {
		t.Run(name, func(t *testing.T) {
			spec := base()
			spec.Timeline = []TimelineEvent{ev}
			if _, err := Run(spec); !errors.Is(err, ErrBadSpec) {
				t.Fatalf("err = %v, want ErrBadSpec", err)
			}
		})
	}
	// A timeline-only spec (no static flows) is valid.
	spec := Spec{Duration: time.Second, Timeline: []TimelineEvent{
		AddBEAt(100*time.Millisecond, BEFlow{ID: 5, Slave: 1, Dir: piconet.Up, RateKbps: 10, PacketSize: 100}),
	}}
	if _, err := Run(spec); err != nil {
		t.Fatalf("timeline-only spec: %v", err)
	}
}

// TestTimelineOnlineAdmission is the end-to-end acceptance test of the
// online protocol: GS flows arrive mid-run through the admission test,
// deliver within their exported bounds, and retire cleanly.
func TestTimelineOnlineAdmission(t *testing.T) {
	gs := func(id piconet.FlowID, slave piconet.SlaveID, dir piconet.Direction) GSFlow {
		return GSFlow{ID: id, Slave: slave, Dir: dir,
			Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176}
	}
	spec := Spec{
		Name:        "online",
		GS:          []GSFlow{gs(1, 1, piconet.Up)},
		BE:          []BEFlow{{ID: 2, Slave: 7, Dir: piconet.Down, RateKbps: 60, PacketSize: 176}},
		DelayTarget: 40 * time.Millisecond,
		Duration:    12 * time.Second,
		Timeline: []TimelineEvent{
			AddGSAt(2*time.Second, gs(10, 2, piconet.Up)),
			AddGSAt(3*time.Second, gs(11, 2, piconet.Down)), // pairs with 10
			AddBEAt(4*time.Second, BEFlow{ID: 12, Slave: 6, Dir: piconet.Up, RateKbps: 40, PacketSize: 176}),
			RemoveAt(8*time.Second, 10),
			RemoveAt(9*time.Second, 12),
		},
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.BoundViolations(); len(v) != 0 {
		t.Fatalf("violations: %+v", v)
	}
	if len(res.Admissions) != 5 {
		t.Fatalf("admission log has %d entries, want 5: %+v", len(res.Admissions), res.Admissions)
	}
	for i, a := range res.Admissions {
		if !a.Accepted {
			t.Fatalf("admissions[%d] rejected: %+v", i, a)
		}
	}
	// The late flow delivered roughly its active share: 64 kbps for
	// (8-2)=6 of 12 seconds ≈ 32 kbps averaged over the run.
	f10, ok := res.FlowByID(10)
	if !ok {
		t.Fatal("flow 10 missing from the report")
	}
	if f10.Kbps < 20 || f10.Kbps > 45 {
		t.Fatalf("flow 10 delivered %.1f kbps, want ≈32", f10.Kbps)
	}
	if f10.Bound <= 0 || f10.Rate <= 0 {
		t.Fatalf("flow 10 lost its contract: %+v", f10)
	}
	// Flow 11 stayed to the end at ~64 kbps.
	f11, _ := res.FlowByID(11)
	if f11.Kbps < 45 {
		t.Fatalf("flow 11 delivered %.1f kbps, want ≈48 (installed at 3s)", f11.Kbps)
	}
	// The removed BE flow stopped offering packets after its removal.
	f12, _ := res.FlowByID(12)
	wantPkts := uint64(5 * 40_000 / 8 / 176) // ≈5 s of 40 kbps in 176-byte packets
	if f12.Offered < wantPkts*8/10 || f12.Offered > wantPkts*12/10 {
		t.Fatalf("flow 12 offered %d packets, want ≈%d (source must stop at removal)",
			f12.Offered, wantPkts)
	}
	// The final plan covers exactly the surviving GS flows.
	ids := map[piconet.FlowID]bool{}
	for _, pf := range res.Admitted {
		ids[pf.Request.ID] = true
	}
	if !ids[1] || !ids[11] || ids[10] {
		t.Fatalf("final plan = %v, want {1, 11}", ids)
	}
}

// TestTimelineRejectionRecorded: an inadmissible request is refused,
// logged, and its departure becomes a recorded no-op.
func TestTimelineRejectionRecorded(t *testing.T) {
	spec := Spec{
		GS: []GSFlow{{ID: 1, Slave: 1, Dir: piconet.Up,
			Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176}},
		DelayTarget: 40 * time.Millisecond,
		Duration:    6 * time.Second,
		Timeline: []TimelineEvent{
			// A 5 ms-interval source needs t ≈ 4 ms of polling; with the
			// piconet's Xi alone x exceeds it: no rate meets the target.
			AddGSAt(time.Second, GSFlow{ID: 10, Slave: 2, Dir: piconet.Up,
				Interval: 5 * time.Millisecond, MinSize: 144, MaxSize: 176}),
			RemoveAt(2*time.Second, 10),
		},
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Admissions) != 2 {
		t.Fatalf("admission log: %+v", res.Admissions)
	}
	if rej := res.Admissions[0]; rej.Accepted || rej.Op != OpAddGS || rej.Reason == "" {
		t.Fatalf("add-gs should be rejected with a reason: %+v", rej)
	}
	if noop := res.Admissions[1]; noop.Accepted || noop.Op != OpRemoveFlow {
		t.Fatalf("remove of a rejected flow should be a recorded no-op: %+v", noop)
	}
	if _, ok := res.FlowByID(10); ok {
		t.Fatal("rejected flow must not appear in the report")
	}
}

// TestTimelineRejectedSCOLeavesNoTrace: a refused add_sco must not leak
// partial state — no phantom slave registration, no reservation.
func TestTimelineRejectedSCOLeavesNoTrace(t *testing.T) {
	spec := Spec{
		// The paper setup's 6-slot worst exchange cannot fit an HV3
		// window, so the voice call is refused.
		GS: []GSFlow{{ID: 1, Slave: 1, Dir: piconet.Up,
			Interval: 20 * time.Millisecond, MinSize: 144, MaxSize: 176}},
		BE:          []BEFlow{{ID: 2, Slave: 2, Dir: piconet.Down, RateKbps: 40, PacketSize: 176}},
		DelayTarget: 40 * time.Millisecond,
		Duration:    4 * time.Second,
		Timeline: []TimelineEvent{
			AddSCOAt(time.Second, SCOLinkSpec{Slave: 5, Type: baseband.TypeHV3}),
		},
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Admissions) != 1 || res.Admissions[0].Accepted {
		t.Fatalf("add-sco should be rejected: %+v", res.Admissions)
	}
	if _, ok := res.SlaveKbps[5]; ok {
		t.Fatal("rejected add-sco registered a phantom slave")
	}
	if res.Slots.SCO != 0 {
		t.Fatalf("rejected add-sco booked %d SCO slots", res.Slots.SCO)
	}
}

// TestTimelineSCOAddDrop: a voice call joins mid-run when the admitted
// set tolerates it, squeezes best effort while up, and leaves cleanly.
func TestTimelineSCOAddDrop(t *testing.T) {
	spec := Spec{
		BE: []BEFlow{
			{ID: 1, Slave: 1, Dir: piconet.Down, RateKbps: 100, PacketSize: 27,
				Allowed: baseband.NewTypeSet(baseband.TypeDH1)},
		},
		Duration: 9 * time.Second,
		Timeline: []TimelineEvent{
			AddSCOAt(3*time.Second, SCOLinkSpec{Slave: 2, Type: baseband.TypeHV3}),
			DropSCOAt(6*time.Second, 2),
		},
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Admissions {
		if !a.Accepted {
			t.Fatalf("admissions[%d]: %+v", i, a)
		}
	}
	// The call was up for 3 of 9 seconds: HV3 carries 30 B per 3.75 ms
	// per direction (= 128 kbps both ways) while active, so ≈42.7 kbps
	// averaged over the run.
	if kbps := res.SCOKbps[2]; kbps < 35 || kbps > 50 {
		t.Fatalf("SCO carried %.1f kbps, want ≈42.7", kbps)
	}
	if res.Slots.SCO == 0 {
		t.Fatal("no SCO slots booked")
	}
	be, _ := res.FlowByID(1)
	if be.Kbps < 90 {
		t.Fatalf("BE carried %.1f kbps, want ≈100 (DH1 fits the SCO window)", be.Kbps)
	}
}

// TestTimelineFingerprintSensitivity: the timeline is part of the spec's
// identity — shifting one event changes the fingerprint.
func TestTimelineFingerprintSensitivity(t *testing.T) {
	base := Paper(40 * time.Millisecond)
	withTL := base
	withTL.Timeline = []TimelineEvent{RemoveAt(5*time.Second, 5)}
	shifted := base
	shifted.Timeline = []TimelineEvent{RemoveAt(6*time.Second, 5)}
	fps := map[string]string{
		base.Fingerprint():    "no timeline",
		withTL.Fingerprint():  "remove at 5s",
		shifted.Fingerprint(): "remove at 6s",
	}
	if len(fps) != 3 {
		t.Fatalf("timeline variants collided: %v", fps)
	}
}

// TestResultSpecIsPureData: a Result's Spec must round-trip through the
// codec — the regression guard for runtime state leaking into results.
func TestResultSpecIsPureData(t *testing.T) {
	spec := Paper(40 * time.Millisecond)
	spec.Duration = time.Second
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(res.Spec)
	if err != nil {
		t.Fatalf("result spec does not serialize: %v", err)
	}
	back, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != spec.Fingerprint() {
		t.Fatal("result spec lost information")
	}
}
