// Package sco models Bluetooth Synchronous Connection-Oriented (SCO) voice
// channels for the paper's §5 comparison: an SCO link reserves slot pairs at
// a fixed cadence regardless of traffic, achieving a very tight delay bound
// at the cost of a hard, unreclaimable slot reservation. The paper's point
// is that the PFP/variable-interval poller approaches SCO's delay bounds
// while the slots it saves remain usable for best-effort traffic or
// retransmissions.
package sco

import (
	"errors"
	"fmt"
	"time"

	"bluegs/internal/baseband"
)

// ErrNotSCO reports a non-SCO packet type.
var ErrNotSCO = errors.New("sco: packet type is not an SCO type")

// Channel describes one SCO link using a given HV packet type.
type Channel struct {
	// Type is the SCO packet type (HV1, HV2 or HV3).
	Type baseband.PacketType
}

// NewChannel validates and returns an SCO channel.
func NewChannel(t baseband.PacketType) (Channel, error) {
	if !t.IsSCO() {
		return Channel{}, fmt.Errorf("%w: %v", ErrNotSCO, t)
	}
	return Channel{Type: t}, nil
}

// IntervalSlots returns T_SCO in slots: the spacing of the channel's
// reserved master transmission slots (HV1: 2, HV2: 4, HV3: 6). Each
// reservation occupies a slot pair (master HV + slave HV).
func (c Channel) IntervalSlots() int {
	switch c.Type {
	case baseband.TypeHV1:
		return 2
	case baseband.TypeHV2:
		return 4
	default:
		return 6
	}
}

// Interval returns T_SCO as a duration.
func (c Channel) Interval() time.Duration {
	return baseband.SlotsToDuration(c.IntervalSlots())
}

// ReservedSlotFraction returns the fraction of piconet slots the channel
// consumes permanently: 2 slots (both directions) every T_SCO.
func (c Channel) ReservedSlotFraction() float64 {
	return 2.0 / float64(c.IntervalSlots())
}

// ReservedSlotsPerSecond returns the absolute reserved slot rate.
func (c Channel) ReservedSlotsPerSecond() float64 {
	return c.ReservedSlotFraction() * baseband.SlotsPerSecond
}

// ThroughputBps returns the user data rate the channel sustains in each
// direction (bits per second). All three HV types carry 64 kbps, the
// Bluetooth voice rate; they differ in FEC strength and cadence.
func (c Channel) ThroughputBps() float64 {
	perInterval := float64(c.Type.Payload() * 8)
	return perInterval / c.Interval().Seconds()
}

// DelayBound returns the worst-case delay of a voice byte on the channel:
// the packetisation time (filling one HV payload at the voice rate equals
// T_SCO) plus the wait for the next reserved pair plus the packet air time.
func (c Channel) DelayBound() time.Duration {
	fill := c.Interval()
	wait := c.Interval()
	air := c.Type.Duration()
	return fill + wait + air
}

// String renders e.g. "SCO/HV3 (64 kbps, 1/3 slots)".
func (c Channel) String() string {
	return fmt.Sprintf("SCO/%v (%.0f kbps, %.2f slots reserved)",
		c.Type, c.ThroughputBps()/1000, c.ReservedSlotFraction())
}
