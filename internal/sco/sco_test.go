package sco

import (
	"errors"
	"math"
	"testing"
	"time"

	"bluegs/internal/baseband"
)

func TestNewChannelValidation(t *testing.T) {
	if _, err := NewChannel(baseband.TypeDH3); !errors.Is(err, ErrNotSCO) {
		t.Fatalf("DH3: err = %v, want ErrNotSCO", err)
	}
	for _, typ := range []baseband.PacketType{baseband.TypeHV1, baseband.TypeHV2, baseband.TypeHV3} {
		if _, err := NewChannel(typ); err != nil {
			t.Fatalf("NewChannel(%v): %v", typ, err)
		}
	}
}

func TestAllHVTypesCarry64Kbps(t *testing.T) {
	// HV1/HV2/HV3 all sustain the 64 kbps Bluetooth voice rate.
	for _, typ := range []baseband.PacketType{baseband.TypeHV1, baseband.TypeHV2, baseband.TypeHV3} {
		c, err := NewChannel(typ)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.ThroughputBps(); math.Abs(got-64000) > 1 {
			t.Fatalf("%v throughput = %v, want 64000", typ, got)
		}
	}
}

func TestReservedFractions(t *testing.T) {
	tests := []struct {
		typ      baseband.PacketType
		interval int
		fraction float64
	}{
		{baseband.TypeHV1, 2, 1.0},
		{baseband.TypeHV2, 4, 0.5},
		{baseband.TypeHV3, 6, 1.0 / 3.0},
	}
	for _, tt := range tests {
		c, err := NewChannel(tt.typ)
		if err != nil {
			t.Fatal(err)
		}
		if got := c.IntervalSlots(); got != tt.interval {
			t.Fatalf("%v interval = %d slots, want %d", tt.typ, got, tt.interval)
		}
		if got := c.ReservedSlotFraction(); math.Abs(got-tt.fraction) > 1e-12 {
			t.Fatalf("%v fraction = %v, want %v", tt.typ, got, tt.fraction)
		}
	}
	hv3, _ := NewChannel(baseband.TypeHV3)
	if got := hv3.ReservedSlotsPerSecond(); math.Abs(got-1600.0/3) > 1e-9 {
		t.Fatalf("HV3 reserved slots/s = %v", got)
	}
}

func TestHV3DelayBound(t *testing.T) {
	c, _ := NewChannel(baseband.TypeHV3)
	// fill (3.75ms) + wait (3.75ms) + air (0.625ms) = 8.125 ms.
	want := 8125 * time.Microsecond
	if got := c.DelayBound(); got != want {
		t.Fatalf("DelayBound = %v, want %v", got, want)
	}
	// SCO delay bounds are far below the GS poller's ~36-48 ms bounds;
	// the paper's §5 comparison rests on this ordering.
	if c.DelayBound() > 20*time.Millisecond {
		t.Fatal("HV3 bound should be far below GS poller bounds")
	}
}

func TestString(t *testing.T) {
	c, _ := NewChannel(baseband.TypeHV3)
	if got := c.String(); got == "" {
		t.Fatal("empty String()")
	}
}
