package segmentation_test

import (
	"fmt"

	"bluegs/internal/baseband"
	"bluegs/internal/segmentation"
)

// The paper's best-fit policy on a 200-byte packet with DH1+DH3 allowed:
// the largest packet first, then the remainder in the smallest that fits.
func ExampleBestFit_Segment() {
	plan, err := segmentation.BestFit{}.Segment(200, baseband.PaperTypes)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(plan, "using", plan.Slots(), "slots")
	// Output: [DH3:183 DH1:17] using 4 slots
}

// The paper's eq. 4 on its own workload: over packet sizes 144..176 every
// packet needs one DH3, so the worst bytes-per-poll is 144.
func ExampleMinPollEfficiency() {
	eff, err := segmentation.MinPollEfficiency(segmentation.BestFit{}, 144, 176, baseband.PaperTypes)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("eta_min = %.0f bytes/poll at size %d\n", eff.BytesPerPoll, eff.Size)
	// Output: eta_min = 144 bytes/poll at size 144
}
