// Package segmentation implements the policies that break higher-layer
// packets into baseband packets, and the derived quantities the paper's
// analysis needs: the number of segments n of a packet, the minimum poll
// efficiency eta_min over a flow's packet-size range (paper eq. 4), and the
// worst-case segment air time.
//
// The paper's evaluation uses the best-fit policy: "the largest available
// baseband packet is used, unless the remainder of the higher layer packet
// fits in a smaller baseband packet."
package segmentation

import (
	"errors"
	"fmt"

	"bluegs/internal/baseband"
)

// Errors returned by segmentation.
var (
	ErrNoACLTypes = errors.New("segmentation: allowed set contains no ACL packet types")
	ErrBadSize    = errors.New("segmentation: packet size must be positive")
	ErrBadRange   = errors.New("segmentation: need 0 < min <= max packet size")
	ErrNilPolicy  = errors.New("segmentation: nil policy")
	ErrEmptySeg   = errors.New("segmentation: policy produced an empty plan")
	ErrShortPlan  = errors.New("segmentation: plan does not cover the packet")
)

// Segment is one baseband packet of a segmentation plan: the chosen type and
// the number of payload bytes it actually carries.
type Segment struct {
	Type  baseband.PacketType
	Bytes int
}

// Plan is an ordered segmentation of one higher-layer packet.
type Plan []Segment

// TotalBytes returns the payload bytes carried by the plan.
func (p Plan) TotalBytes() int {
	total := 0
	for _, s := range p {
		total += s.Bytes
	}
	return total
}

// Slots returns the air slots consumed by the plan's packets (one direction
// only; responses are accounted separately by the piconet).
func (p Plan) Slots() int {
	slots := 0
	for _, s := range p {
		slots += s.Type.Slots()
	}
	return slots
}

// String renders e.g. "[DH3:183 DH1:17]".
func (p Plan) String() string {
	out := "["
	for i, s := range p {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%v:%d", s.Type, s.Bytes)
	}
	return out + "]"
}

// Policy decides how a higher-layer packet of a given size is segmented into
// baseband packets drawn from an allowed type set.
type Policy interface {
	// Segment returns the ordered plan for a packet of size bytes.
	Segment(size int, allowed baseband.TypeSet) (Plan, error)
	// Name identifies the policy in reports.
	Name() string
}

// Appender is the allocation-free fast path a Policy may additionally
// implement: SegmentAppend writes the plan into dst's backing array
// (extending it only when capacity runs out) instead of allocating a fresh
// Plan per packet. The piconet's packet pool uses it to recycle plan storage
// across arrivals. Both built-in policies implement it.
type Appender interface {
	SegmentAppend(dst Plan, size int, allowed baseband.TypeSet) (Plan, error)
}

// BestFit is the paper's policy: each segment uses the largest allowed
// packet, unless the remaining bytes fit into a smaller allowed packet, in
// which case the smallest fitting packet is used. The zero value is ready to
// use.
type BestFit struct{}

var (
	_ Policy   = BestFit{}
	_ Appender = BestFit{}
)

// Name implements Policy.
func (BestFit) Name() string { return "best-fit" }

// Segment implements Policy.
func (p BestFit) Segment(size int, allowed baseband.TypeSet) (Plan, error) {
	return p.SegmentAppend(nil, size, allowed)
}

// SegmentAppend implements Appender.
func (BestFit) SegmentAppend(dst Plan, size int, allowed baseband.TypeSet) (Plan, error) {
	if size <= 0 {
		return nil, ErrBadSize
	}
	largest, ok := allowed.LargestACL()
	if !ok {
		return nil, ErrNoACLTypes
	}
	plan := dst
	remaining := size
	for remaining > 0 {
		if t, fits := allowed.SmallestFitting(remaining); fits {
			plan = append(plan, Segment{Type: t, Bytes: remaining})
			remaining = 0
			break
		}
		plan = append(plan, Segment{Type: largest, Bytes: largest.Payload()})
		remaining -= largest.Payload()
	}
	return plan, nil
}

// GreedyLargest always uses the largest allowed packet for every segment,
// including the last. It is a deliberately naive contrast policy for the
// ablation benches (it wastes multi-slot packets on small remainders).
type GreedyLargest struct{}

var (
	_ Policy   = GreedyLargest{}
	_ Appender = GreedyLargest{}
)

// Name implements Policy.
func (GreedyLargest) Name() string { return "greedy-largest" }

// Segment implements Policy.
func (p GreedyLargest) Segment(size int, allowed baseband.TypeSet) (Plan, error) {
	return p.SegmentAppend(nil, size, allowed)
}

// SegmentAppend implements Appender.
func (GreedyLargest) SegmentAppend(dst Plan, size int, allowed baseband.TypeSet) (Plan, error) {
	if size <= 0 {
		return nil, ErrBadSize
	}
	largest, ok := allowed.LargestACL()
	if !ok {
		return nil, ErrNoACLTypes
	}
	plan := dst
	remaining := size
	for remaining > 0 {
		carry := largest.Payload()
		if carry > remaining {
			carry = remaining
		}
		plan = append(plan, Segment{Type: largest, Bytes: carry})
		remaining -= carry
	}
	return plan, nil
}

// Count returns the number of segments the policy produces for a packet of
// the given size.
func Count(p Policy, size int, allowed baseband.TypeSet) (int, error) {
	if p == nil {
		return 0, ErrNilPolicy
	}
	plan, err := p.Segment(size, allowed)
	if err != nil {
		return 0, err
	}
	if len(plan) == 0 {
		return 0, ErrEmptySeg
	}
	if plan.TotalBytes() != size {
		return 0, fmt.Errorf("%w: plan carries %d of %d bytes", ErrShortPlan, plan.TotalBytes(), size)
	}
	return len(plan), nil
}

// Efficiency is a poll-efficiency sample: the packet size achieving it and
// the resulting bytes-per-poll value.
type Efficiency struct {
	// Size is the higher-layer packet size in bytes.
	Size int
	// Segments is the number of polls (segments) the packet needs.
	Segments int
	// BytesPerPoll is Size/Segments, the paper's eta.
	BytesPerPoll float64
}

// MinPollEfficiency computes eta_min over all packet sizes in [minSize,
// maxSize] (paper eq. 4): the minimum, over the flow's possible packet
// sizes, of useful bytes per poll. The worst case pins the poll interval
// t = eta_min / R.
func MinPollEfficiency(p Policy, minSize, maxSize int, allowed baseband.TypeSet) (Efficiency, error) {
	if p == nil {
		return Efficiency{}, ErrNilPolicy
	}
	if minSize <= 0 || minSize > maxSize {
		return Efficiency{}, ErrBadRange
	}
	best := Efficiency{}
	found := false
	for size := minSize; size <= maxSize; size++ {
		n, err := Count(p, size, allowed)
		if err != nil {
			return Efficiency{}, err
		}
		eta := float64(size) / float64(n)
		if !found || eta < best.BytesPerPoll {
			best = Efficiency{Size: size, Segments: n, BytesPerPoll: eta}
			found = true
		}
	}
	return best, nil
}

// MaxSegmentSlots returns the largest slot occupancy of any segment the
// policy can emit for packet sizes in [minSize, maxSize]. This is the
// one-direction component of the paper's per-flow worst segment
// transmission time xi_i.
func MaxSegmentSlots(p Policy, minSize, maxSize int, allowed baseband.TypeSet) (int, error) {
	if p == nil {
		return 0, ErrNilPolicy
	}
	if minSize <= 0 || minSize > maxSize {
		return 0, ErrBadRange
	}
	maxSlots := 0
	for size := minSize; size <= maxSize; size++ {
		plan, err := p.Segment(size, allowed)
		if err != nil {
			return 0, err
		}
		for _, s := range plan {
			if s.Type.Slots() > maxSlots {
				maxSlots = s.Type.Slots()
			}
		}
	}
	if maxSlots == 0 {
		return 0, ErrEmptySeg
	}
	return maxSlots, nil
}
