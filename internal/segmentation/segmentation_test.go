package segmentation

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bluegs/internal/baseband"
)

func TestBestFitPaperExamples(t *testing.T) {
	// Allowed types DH1 (27) and DH3 (183), as in the paper's evaluation.
	tests := []struct {
		name string
		size int
		want []baseband.PacketType
	}{
		{"tiny fits DH1", 10, []baseband.PacketType{baseband.TypeDH1}},
		{"exactly DH1", 27, []baseband.PacketType{baseband.TypeDH1}},
		{"28 needs DH3", 28, []baseband.PacketType{baseband.TypeDH3}},
		{"GS min packet 144 one DH3", 144, []baseband.PacketType{baseband.TypeDH3}},
		{"GS max packet 176 one DH3", 176, []baseband.PacketType{baseband.TypeDH3}},
		{"exactly DH3", 183, []baseband.PacketType{baseband.TypeDH3}},
		{"remainder fits DH1", 200, []baseband.PacketType{baseband.TypeDH3, baseband.TypeDH1}},
		{"remainder needs DH3", 300, []baseband.PacketType{baseband.TypeDH3, baseband.TypeDH3}},
		{"two DH3 exactly", 366, []baseband.PacketType{baseband.TypeDH3, baseband.TypeDH3}},
		{"two DH3 plus DH1", 380, []baseband.PacketType{baseband.TypeDH3, baseband.TypeDH3, baseband.TypeDH1}},
	}
	var policy BestFit
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			plan, err := policy.Segment(tt.size, baseband.PaperTypes)
			if err != nil {
				t.Fatalf("Segment(%d): %v", tt.size, err)
			}
			if len(plan) != len(tt.want) {
				t.Fatalf("Segment(%d) = %v, want types %v", tt.size, plan, tt.want)
			}
			for i, seg := range plan {
				if seg.Type != tt.want[i] {
					t.Fatalf("Segment(%d)[%d] = %v, want %v", tt.size, i, seg.Type, tt.want[i])
				}
			}
			if got := plan.TotalBytes(); got != tt.size {
				t.Fatalf("plan carries %d bytes, want %d", got, tt.size)
			}
		})
	}
}

func TestBestFitErrors(t *testing.T) {
	var policy BestFit
	if _, err := policy.Segment(0, baseband.PaperTypes); !errors.Is(err, ErrBadSize) {
		t.Fatalf("size 0: err = %v", err)
	}
	if _, err := policy.Segment(-5, baseband.PaperTypes); !errors.Is(err, ErrBadSize) {
		t.Fatalf("negative size: err = %v", err)
	}
	scoOnly := baseband.NewTypeSet(baseband.TypeHV3)
	if _, err := policy.Segment(10, scoOnly); !errors.Is(err, ErrNoACLTypes) {
		t.Fatalf("SCO-only set: err = %v", err)
	}
	if _, err := policy.Segment(10, baseband.TypeSet(0)); !errors.Is(err, ErrNoACLTypes) {
		t.Fatalf("empty set: err = %v", err)
	}
}

func TestGreedyLargest(t *testing.T) {
	var policy GreedyLargest
	plan, err := policy.Segment(200, baseband.PaperTypes)
	if err != nil {
		t.Fatalf("Segment: %v", err)
	}
	// Greedy uses DH3 even for the 17-byte remainder.
	if len(plan) != 2 || plan[0].Type != baseband.TypeDH3 || plan[1].Type != baseband.TypeDH3 {
		t.Fatalf("greedy plan = %v, want two DH3", plan)
	}
	if plan.TotalBytes() != 200 {
		t.Fatalf("plan carries %d bytes, want 200", plan.TotalBytes())
	}
	// Greedy consumes at least as many slots as best-fit.
	bf, err := BestFit{}.Segment(200, baseband.PaperTypes)
	if err != nil {
		t.Fatalf("BestFit.Segment: %v", err)
	}
	if plan.Slots() < bf.Slots() {
		t.Fatalf("greedy slots %d < best-fit slots %d", plan.Slots(), bf.Slots())
	}
}

func TestPlanSlotsAndString(t *testing.T) {
	plan := Plan{
		{Type: baseband.TypeDH3, Bytes: 183},
		{Type: baseband.TypeDH1, Bytes: 17},
	}
	if got := plan.Slots(); got != 4 {
		t.Fatalf("Slots() = %d, want 4", got)
	}
	if got := plan.String(); got != "[DH3:183 DH1:17]" {
		t.Fatalf("String() = %q", got)
	}
}

func TestCount(t *testing.T) {
	n, err := Count(BestFit{}, 200, baseband.PaperTypes)
	if err != nil {
		t.Fatalf("Count: %v", err)
	}
	if n != 2 {
		t.Fatalf("Count(200) = %d, want 2", n)
	}
	if _, err := Count(nil, 200, baseband.PaperTypes); !errors.Is(err, ErrNilPolicy) {
		t.Fatalf("nil policy: err = %v", err)
	}
}

func TestMinPollEfficiencyPaper(t *testing.T) {
	// Paper §4.1: over packet sizes 144..176 with DH1+DH3 and best-fit,
	// every packet is one DH3, so eta_min = 144 bytes at size 144.
	eff, err := MinPollEfficiency(BestFit{}, 144, 176, baseband.PaperTypes)
	if err != nil {
		t.Fatalf("MinPollEfficiency: %v", err)
	}
	if eff.Size != 144 || eff.Segments != 1 || eff.BytesPerPoll != 144 {
		t.Fatalf("eta_min = %+v, want {144, 1, 144}", eff)
	}
}

func TestMinPollEfficiencyBoundaryDrop(t *testing.T) {
	// Around a segment-count boundary the efficiency drops: size 183 is
	// one DH3 (eta 183), size 184 is DH3+DH1 (eta 92). The minimum over
	// [150, 250] must be at 184.
	eff, err := MinPollEfficiency(BestFit{}, 150, 250, baseband.PaperTypes)
	if err != nil {
		t.Fatalf("MinPollEfficiency: %v", err)
	}
	if eff.Size != 184 || eff.Segments != 2 {
		t.Fatalf("eta_min = %+v, want worst at size 184 with 2 segments", eff)
	}
	if math.Abs(eff.BytesPerPoll-92) > 1e-9 {
		t.Fatalf("eta_min = %v, want 92", eff.BytesPerPoll)
	}
}

func TestMinPollEfficiencyErrors(t *testing.T) {
	if _, err := MinPollEfficiency(BestFit{}, 0, 10, baseband.PaperTypes); !errors.Is(err, ErrBadRange) {
		t.Fatalf("min 0: err = %v", err)
	}
	if _, err := MinPollEfficiency(BestFit{}, 20, 10, baseband.PaperTypes); !errors.Is(err, ErrBadRange) {
		t.Fatalf("inverted range: err = %v", err)
	}
	if _, err := MinPollEfficiency(nil, 1, 10, baseband.PaperTypes); !errors.Is(err, ErrNilPolicy) {
		t.Fatalf("nil policy: err = %v", err)
	}
}

func TestMaxSegmentSlots(t *testing.T) {
	// GS flows 144..176 with DH1+DH3: every segment is a DH3 -> 3 slots.
	slots, err := MaxSegmentSlots(BestFit{}, 144, 176, baseband.PaperTypes)
	if err != nil {
		t.Fatalf("MaxSegmentSlots: %v", err)
	}
	if slots != 3 {
		t.Fatalf("MaxSegmentSlots = %d, want 3", slots)
	}
	// Packets up to 27 bytes only ever use DH1 -> 1 slot.
	slots, err = MaxSegmentSlots(BestFit{}, 1, 27, baseband.PaperTypes)
	if err != nil {
		t.Fatalf("MaxSegmentSlots: %v", err)
	}
	if slots != 1 {
		t.Fatalf("MaxSegmentSlots = %d, want 1", slots)
	}
}

// TestPropertyPlansCoverExactly: any policy plan carries exactly the packet
// size, every segment respects its type capacity, and only allowed ACL types
// appear.
func TestPropertyPlansCoverExactly(t *testing.T) {
	policies := []Policy{BestFit{}, GreedyLargest{}}
	f := func(sizeRaw uint16, setBits uint8, policyIdx uint8) bool {
		size := 1 + int(sizeRaw%2000)
		sets := []baseband.TypeSet{
			baseband.PaperTypes,
			baseband.ACLAll,
			baseband.ACLHighRate,
			baseband.ACLMediumRate,
			baseband.ACL1Slot,
		}
		allowed := sets[int(setBits)%len(sets)]
		policy := policies[int(policyIdx)%len(policies)]
		plan, err := policy.Segment(size, allowed)
		if err != nil {
			return false
		}
		if plan.TotalBytes() != size {
			return false
		}
		for _, seg := range plan {
			if !allowed.Contains(seg.Type) || !seg.Type.IsACL() {
				return false
			}
			if seg.Bytes <= 0 || seg.Bytes > seg.Type.Payload() {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(31))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyBestFitNeverWorseThanGreedy: best-fit never uses more slots
// than greedy-largest (it may use strictly fewer on small remainders).
func TestPropertyBestFitNeverWorseThanGreedy(t *testing.T) {
	f := func(sizeRaw uint16) bool {
		size := 1 + int(sizeRaw%3000)
		bf, err1 := BestFit{}.Segment(size, baseband.ACLAll)
		gr, err2 := GreedyLargest{}.Segment(size, baseband.ACLAll)
		if err1 != nil || err2 != nil {
			return false
		}
		return bf.Slots() <= gr.Slots()
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(37))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEfficiencyIsMinimum: eta_min is <= eta(L) for every L in the
// range (verifying the scan really finds the minimum of eq. 4).
func TestPropertyEfficiencyIsMinimum(t *testing.T) {
	f := func(a, b uint8) bool {
		lo, hi := 1+int(a), 1+int(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		eff, err := MinPollEfficiency(BestFit{}, lo, hi, baseband.PaperTypes)
		if err != nil {
			return false
		}
		for size := lo; size <= hi; size++ {
			n, err := Count(BestFit{}, size, baseband.PaperTypes)
			if err != nil {
				return false
			}
			if float64(size)/float64(n) < eff.BytesPerPoll-1e-9 {
				return false
			}
		}
		return eff.Size >= lo && eff.Size <= hi
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBestFitSegment(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := (BestFit{}).Segment(1500, baseband.ACLAll); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinPollEfficiency(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MinPollEfficiency(BestFit{}, 144, 176, baseband.PaperTypes); err != nil {
			b.Fatal(err)
		}
	}
}
