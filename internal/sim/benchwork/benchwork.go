// Package benchwork defines the kernel benchmark workloads shared by the
// in-tree BenchmarkKernel* benchmarks (internal/sim) and cmd/bench, so the
// committed BENCH_kernel.json baseline always measures exactly the same
// workloads as `go test -bench=BenchmarkKernel` — the two cannot drift.
//
// Each workload treats one benchmark op as one fired event and reports an
// events/s metric; the slot-aligned paths must stay at 0 allocs/op.
package benchwork

import (
	"testing"
	"time"

	"bluegs/internal/sim"
)

// reportEventsPerSec converts the op rate to an events/s metric.
func reportEventsPerSec(b *testing.B) {
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "events/s")
	}
}

// Churn returns the self-rescheduling single-event workload at the given
// cadence: one event in flight, each firing scheduling the next. At
// sim.SlotGrain this is the piconet steady state on the wheel path; at an
// off-grid cadence every event takes the 4-ary heap path.
func Churn(interval time.Duration) func(b *testing.B) {
	return func(b *testing.B) {
		s := sim.New()
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < b.N {
				s.After(interval, tick)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		s.Schedule(0, tick)
		if err := s.RunAll(); err != nil {
			b.Fatal(err)
		}
		reportEventsPerSec(b)
	}
}

// OffGridInterval is a prime cadence that never lands on the slot grid,
// keeping the Churn workload on the heap path.
const OffGridInterval = 617 * time.Microsecond

// ScheduleCancel mirrors the piconet wake-supersede pattern: every fired
// event schedules a decoy, cancels it, then schedules its successor.
func ScheduleCancel(b *testing.B) {
	s := sim.New()
	n := 0
	nop := func() {}
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.Cancel(s.After(4*sim.SlotGrain, nop))
			s.After(sim.SlotGrain, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.Schedule(0, tick)
	if err := s.RunAll(); err != nil {
		b.Fatal(err)
	}
	reportEventsPerSec(b)
}

// DeepHeap keeps a standing population of 1024 off-grid events while
// churning, measuring heap push/pop at realistic depth.
func DeepHeap(b *testing.B) {
	s := sim.New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			s.After(999*time.Microsecond, tick)
		}
	}
	for i := 0; i < 1024; i++ {
		// Far-future off-grid sentinels that never fire during the
		// measured churn.
		s.Schedule(time.Hour+sim.Time(i)*time.Microsecond, func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.Schedule(0, tick)
	if n < b.N {
		// Drain only the churn; the sentinels stay pending.
		if err := s.Run(time.Duration(b.N) * time.Millisecond); err != nil {
			b.Fatal(err)
		}
	}
	reportEventsPerSec(b)
}

// SameSlotBatch schedules 64-event same-instant batches and drains them,
// measuring the wheel's re-heapify-free batch pop.
func SameSlotBatch(b *testing.B) {
	s := sim.New()
	nop := func() {}
	const batch = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += batch {
		at := s.Now() + sim.SlotGrain
		for j := 0; j < batch; j++ {
			s.Schedule(at, nop)
		}
		if err := s.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
	reportEventsPerSec(b)
}
