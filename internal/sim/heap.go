package sim

// 4-ary min-heap of event-slot indices, keyed on (at, seq). A 4-ary layout
// halves the tree depth of a binary heap, trading slightly wider sift-down
// comparisons for fewer cache lines touched per operation; with concrete
// int32 elements there is no interface dispatch and no boxing, unlike
// container/heap.

// heapLess orders two pooled events by (at, seq).
func (s *Simulator) heapLess(a, b int32) bool {
	ea, eb := &s.events[a], &s.events[b]
	if ea.at != eb.at {
		return ea.at < eb.at
	}
	return ea.seq < eb.seq
}

// heapPush inserts the slot index and restores the heap invariant.
func (s *Simulator) heapPush(idx int32) {
	s.heap = append(s.heap, idx)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !s.heapLess(s.heap[i], s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

// heapPeek returns the heap's earliest live event, discarding and recycling
// cancelled events encountered at the top.
func (s *Simulator) heapPeek() (int32, bool) {
	for len(s.heap) > 0 {
		top := s.heap[0]
		if !s.events[top].cancelled {
			return top, true
		}
		s.heapPop()
		s.recycle(top)
	}
	return noSlot, false
}

// heapPop removes the heap's root and restores the invariant by sifting the
// last element down, choosing the smallest of up to four children per level.
func (s *Simulator) heapPop() {
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap = s.heap[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if s.heapLess(s.heap[c], s.heap[min]) {
				min = c
			}
		}
		if !s.heapLess(s.heap[min], s.heap[i]) {
			break
		}
		s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
		i = min
	}
}
