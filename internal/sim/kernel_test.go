package sim

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestDifferentialRandomWorkload replays a randomized schedule / cancel /
// in-handler-reschedule workload through the kernel and checks the firing
// order against the trivially-correct reference: all non-cancelled events
// sorted by (at, schedule order). This exercises both routing paths (wheel
// for on-grid times, heap for off-grid and far-future times) and their
// same-instant interleaving.
func TestDifferentialRandomWorkload(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := New()

		type rec struct {
			at        Time
			cancelled bool
			fired     bool
		}
		var recs []rec
		var fired []int // record ids in firing order
		var live []int  // scheduled, not cancelled, not fired
		victims := map[int]Event{}

		randomAt := func() Time {
			base := s.Now()
			switch rng.Intn(4) {
			case 0: // on-grid, near: wheel path
				return base + Time(rng.Intn(64)+1)*SlotGrain - base%SlotGrain
			case 1: // on-grid, beyond the wheel window: heap path
				return base - base%SlotGrain + Time(wheelSlots+rng.Intn(500))*SlotGrain
			case 2: // off-grid, near
				return base + Time(rng.Intn(40_000)+1)*time.Microsecond
			default: // exactly now (same-instant FIFO)
				return base
			}
		}

		var schedule func(at Time)
		schedule = func(at Time) {
			id := len(recs)
			recs = append(recs, rec{at: at})
			live = append(live, id)
			ev := s.Schedule(at, func() {
				recs[id].fired = true
				fired = append(fired, id)
				for i, l := range live {
					if l == id {
						live = append(live[:i], live[i+1:]...)
						break
					}
				}
				// Handlers keep the churn going: schedule a few more
				// while the population is small, sometimes cancel a
				// random live event (a reschedule is cancel+schedule).
				if len(recs) < 400 {
					for n := rng.Intn(3); n > 0; n-- {
						schedule(randomAt())
					}
				}
				if len(live) > 0 && rng.Intn(3) == 0 {
					victim := live[rng.Intn(len(live))]
					s.Cancel(victims[victim])
					recs[victim].cancelled = true
					for i, l := range live {
						if l == victim {
							live = append(live[:i], live[i+1:]...)
							break
						}
					}
					if rng.Intn(2) == 0 {
						schedule(randomAt()) // the "reschedule" half
					}
				}
			})
			victims[id] = ev
		}

		for i := 0; i < 30; i++ {
			schedule(randomAt())
		}
		if err := s.RunAll(); err != nil {
			t.Fatalf("seed %d: RunAll: %v", seed, err)
		}

		// Reference order: every non-cancelled event, sorted by
		// (at, schedule order). The kernel's seq is assigned per
		// Schedule call, so record ids are a faithful proxy.
		var want []int
		for id, r := range recs {
			if !r.cancelled {
				want = append(want, id)
			}
		}
		sort.SliceStable(want, func(i, j int) bool {
			return recs[want[i]].at < recs[want[j]].at
		})
		if len(fired) != len(want) {
			t.Fatalf("seed %d: fired %d events, reference says %d", seed, len(fired), len(want))
		}
		for i := range want {
			if fired[i] != want[i] {
				t.Fatalf("seed %d: firing order diverges from reference at position %d: got id %d (at %v), want id %d (at %v)",
					seed, i, fired[i], recs[fired[i]].at, want[i], recs[want[i]].at)
			}
		}
		for id, r := range recs {
			if r.cancelled && r.fired {
				t.Fatalf("seed %d: cancelled event %d fired", seed, id)
			}
		}
		if s.Pending() != 0 {
			t.Fatalf("seed %d: Pending() = %d after RunAll, want 0", seed, s.Pending())
		}
	}
}

// TestEventPoolReuse checks that serial schedule→fire churn recycles pool
// slots instead of growing the slab: thousands of sequential events must fit
// in a handful of slots.
func TestEventPoolReuse(t *testing.T) {
	s := New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 10_000 {
			s.After(SlotGrain, tick)
		}
	}
	s.Schedule(0, tick)
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if n != 10_000 {
		t.Fatalf("fired %d events, want 10000", n)
	}
	if got := len(s.events); got > 4 {
		t.Fatalf("event slab grew to %d slots for serial churn, want <= 4 (slots not recycled)", got)
	}
}

// TestStaleHandleCancelSafety checks that a handle to a fired event whose
// pool slot was recycled for a new event is inert: Pending/Cancelled report
// false, and Cancel must not touch the slot's new occupant.
func TestStaleHandleCancelSafety(t *testing.T) {
	s := New()
	stale := s.Schedule(SlotGrain, func() {})
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if stale.Pending() || stale.Cancelled() {
		t.Fatal("handle to a fired event reports Pending or Cancelled")
	}
	s.Cancel(stale) // must be a no-op

	// The next event recycles the fired event's slot (serial churn keeps
	// the slab at one slot); the stale handle must not be able to cancel
	// it even though both handles share the slot index.
	fired := false
	fresh := s.Schedule(2*SlotGrain, func() { fired = true })
	if !fresh.Pending() {
		t.Fatal("fresh event not pending")
	}
	s.Cancel(stale)
	if !fresh.Pending() {
		t.Fatal("stale Cancel hit the slot's new occupant")
	}
	if stale.At() != 0 {
		t.Fatalf("stale At() = %v, want 0", stale.At())
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if !fired {
		t.Fatal("fresh event never fired after stale Cancel attempts")
	}
	s.Cancel(stale) // post-run: still a no-op
}

// TestPendingExcludesCancelled pins the documented Pending semantics: the
// count tracks scheduled, non-cancelled events exactly, even though
// cancelled events are discarded lazily.
func TestPendingExcludesCancelled(t *testing.T) {
	s := New()
	a := s.Schedule(SlotGrain, func() {})
	b := s.Schedule(3*time.Millisecond, func() {}) // off-grid: heap side
	c := s.Schedule(2*SlotGrain, func() {})
	if got := s.Pending(); got != 3 {
		t.Fatalf("Pending() = %d, want 3", got)
	}
	s.Cancel(a)
	s.Cancel(b)
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after two cancels, want 1 (cancelled events must not count)", got)
	}
	s.Cancel(a) // double cancel must not double-decrement
	if got := s.Pending(); got != 1 {
		t.Fatalf("Pending() = %d after double cancel, want 1", got)
	}
	_ = c
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending() = %d after RunAll, want 0", got)
	}
}

// TestWheelHeapSameInstantFIFO schedules events for the same instant into
// both structures — one far ahead (heap, beyond the wheel window) and two
// near (wheel) — and checks the global FIFO tiebreak across them.
func TestWheelHeapSameInstantFIFO(t *testing.T) {
	s := New()
	far := Time(wheelSlots+10) * SlotGrain
	var order []int
	s.Schedule(far, func() { order = append(order, 0) }) // heap: beyond window
	s.Schedule(far-5*SlotGrain, func() {
		// Within the window now: these land on the wheel, same instant.
		s.Schedule(far, func() { order = append(order, 1) })
		s.Schedule(far, func() { order = append(order, 2) })
	})
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("same-instant wheel/heap interleave fired %v, want [0 1 2] (schedule order)", order)
	}
}

// TestSteadyStateZeroAllocs asserts the headline property: steady-state
// schedule→fire of slot-aligned events allocates nothing.
func TestSteadyStateZeroAllocs(t *testing.T) {
	s := New()
	var tick func()
	tick = func() { s.After(SlotGrain, tick) }
	s.Schedule(0, tick)
	for i := 0; i < 100; i++ { // warm the pool
		s.Step()
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state slot churn allocates %.1f objects per event, want 0", allocs)
	}
}
