package sim_test

import (
	"testing"

	"bluegs/internal/sim"
	"bluegs/internal/sim/benchwork"
)

// Kernel microbenchmarks: schedule/fire/cancel churn through both routing
// paths. The workloads live in benchwork so cmd/bench measures exactly the
// same code for the committed BENCH_kernel.json baseline; the slot-aligned
// paths must stay at 0 allocs/op in steady state.

// BenchmarkKernelSlotChurn is the piconet steady state: one slot-aligned
// event in flight, each firing scheduling the next. Wheel path, 0 allocs.
func BenchmarkKernelSlotChurn(b *testing.B) {
	benchwork.Churn(sim.SlotGrain)(b)
}

// BenchmarkKernelOffGridChurn is the same churn at an off-grid cadence,
// forcing every event through the 4-ary heap.
func BenchmarkKernelOffGridChurn(b *testing.B) {
	benchwork.Churn(benchwork.OffGridInterval)(b)
}

// BenchmarkKernelScheduleCancel measures cancel churn: every fired event
// schedules a decoy, cancels it, then schedules its successor — the
// piconet's wake-supersede pattern.
func BenchmarkKernelScheduleCancel(b *testing.B) {
	benchwork.ScheduleCancel(b)
}

// BenchmarkKernelDeepHeap keeps a standing population of 1024 off-grid
// events while churning, measuring heap push/pop at realistic depth.
func BenchmarkKernelDeepHeap(b *testing.B) {
	benchwork.DeepHeap(b)
}

// BenchmarkKernelSameSlotBatch schedules 64-event same-instant batches and
// drains them, measuring the wheel's re-heapify-free batch pop.
func BenchmarkKernelSameSlotBatch(b *testing.B) {
	benchwork.SameSlotBatch(b)
}
