package sim

import (
	"fmt"
	"sync"
)

// ShardSet drives a fixed set of independent Simulators ("shards") to a
// common horizon in lockstep epochs: every shard runs its own event
// kernel up to the epoch boundary, then all shards synchronize at a
// barrier where cross-shard mailboxes drain and the caller's exchange
// hook runs single-threaded. This is the conservative
// parallel-discrete-event-simulation shape: shards may interact only
// through state swapped at barriers, so the epoch length is the
// lookahead the coupling model must tolerate.
//
// Determinism is the design constraint, exactly as for a single
// Simulator. Shards share no mutable state while an epoch runs (each
// kernel, its RNG and its seq counter are private), mailbox posts drain
// at the barrier in (source shard, post order) — an order fixed by the
// shards' own deterministic execution — and the exchange hook runs on
// one goroutine with every shard clock parked at the boundary. The
// worker count therefore multiplexes shard execution without touching
// any ordering input: results are byte-identical at any worker count,
// including workers == 1.
type ShardSet struct {
	shards []*Simulator
	// mail[src] buffers the posts shard src made during the current
	// epoch. Only shard src's worker goroutine appends to it while an
	// epoch runs; the barrier drains all buffers single-threaded.
	mail [][]mailPost
}

// mailPost is one cross-shard event in flight: scheduled into the
// destination kernel at the next barrier.
type mailPost struct {
	dst int
	at  Time
	fn  Handler
}

// NewShardSet groups the given simulators into a shard set. The slice
// order fixes shard indices for Post and for barrier drain order.
func NewShardSet(shards ...*Simulator) *ShardSet {
	return &ShardSet{shards: shards, mail: make([][]mailPost, len(shards))}
}

// Len returns the number of shards.
func (ss *ShardSet) Len() int { return len(ss.shards) }

// Shard returns the i-th shard's simulator.
func (ss *ShardSet) Shard(i int) *Simulator { return ss.shards[i] }

// Post enqueues fn for delivery into shard dst's kernel at the next
// epoch barrier, stamped with the sending epoch: the event is scheduled
// at max(at, barrier time), so a post can never land in a destination
// shard's past even when the sender ran ahead of it inside the epoch.
// Post is safe to call from shard src's goroutine while an epoch runs
// (each source owns its own buffer) and from the exchange hook
// (src is then ignored in favor of deterministic barrier order anyway).
func (ss *ShardSet) Post(src, dst int, at Time, fn Handler) {
	ss.mail[src] = append(ss.mail[src], mailPost{dst: dst, at: at, fn: fn})
}

// drainMail schedules every buffered post into its destination kernel.
// Runs single-threaded at a barrier with all shard clocks at end;
// source order then post order keeps destination seq assignment a pure
// function of the shards' deterministic execution.
func (ss *ShardSet) drainMail(end Time) {
	for src := range ss.mail {
		for _, p := range ss.mail[src] {
			at := p.at
			if at < end {
				at = end
			}
			ss.shards[p.dst].Schedule(at, p.fn)
		}
		ss.mail[src] = ss.mail[src][:0]
	}
}

// RunEpochs drives every shard to horizon in lockstep epochs of the
// given length (epoch <= 0 means a single epoch spanning the whole
// horizon), running shard kernels on up to `workers` goroutines
// (workers <= 1 runs them inline on the calling goroutine, with no
// goroutines at all). After every epoch — including the final one — the
// barrier drains cross-shard mailboxes and then calls exchange (when
// non-nil) single-threaded with every shard clock at the boundary.
//
// The returned slice holds one error per shard: ErrStopped for shards
// that called Stop, a wrapped panic for shards whose handlers panicked.
// The first epoch in which any shard fails is the last epoch run — the
// surviving shards still complete it (the barrier is the abort point,
// keeping the set of fired events independent of the worker count).
func (ss *ShardSet) RunEpochs(horizon, epoch Time, workers int, exchange func(end Time)) []error {
	errs := make([]error, len(ss.shards))
	if len(ss.shards) == 0 {
		return errs
	}
	if epoch <= 0 {
		epoch = horizon
	}
	if workers > len(ss.shards) {
		workers = len(ss.shards)
	}

	runShard := func(i int, end Time) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("sim: shard %d panicked: %v", i, r)
			}
		}()
		if errs[i] == nil {
			errs[i] = ss.shards[i].Run(end)
		}
	}

	var tasks chan int
	var done chan struct{}
	var end Time
	if workers > 1 {
		tasks = make(chan int)
		done = make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range tasks {
					runShard(i, end)
					done <- struct{}{}
				}
			}()
		}
		defer func() {
			close(tasks)
			wg.Wait()
		}()
	}

	for start := Time(0); start < horizon || start == 0; start += epoch {
		end = start + epoch
		if end > horizon {
			end = horizon
		}
		if workers > 1 {
			// The sends below happen-before each worker's Run, and every
			// receive happens-after it: the barrier is a full memory fence
			// between epochs, so the exchange hook reads settled state.
			go func(n int) {
				for i := 0; i < n; i++ {
					tasks <- i
				}
			}(len(ss.shards))
			for range ss.shards {
				<-done
			}
		} else {
			for i := range ss.shards {
				runShard(i, end)
			}
		}
		ss.drainMail(end)
		if exchange != nil {
			exchange(end)
		}
		for _, err := range errs {
			if err != nil {
				return errs
			}
		}
		if end >= horizon {
			break
		}
	}
	return errs
}
