package sim

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"
)

// shardTrace runs a ShardSet of n self-rescheduling RNG-driven shards
// that cross-post into each other's kernels, and returns a trace of
// every fired event: the determinism witness the worker-count tests
// compare byte for byte.
func shardTrace(t *testing.T, n, workers int, horizon, epoch Time) (string, []uint64) {
	t.Helper()
	shards := make([]*Simulator, n)
	for i := range shards {
		shards[i] = New(WithSeed(int64(1000 + i)))
	}
	ss := NewShardSet(shards...)
	// One trace buffer per shard: every write happens on the owning
	// shard's goroutine (a mailed event executes inside the destination
	// kernel), and the buffers concatenate in shard order afterwards.
	traces := make([]strings.Builder, n)
	for i := range shards {
		i := i
		s := shards[i]
		var tick func()
		tick = func() {
			fmt.Fprintf(&traces[i], "s%d@%v r%d\n", i, s.Now(), s.Rand().Intn(1000))
			// Cross-post to the next shard: lands at the next barrier.
			dst := (i + 1) % n
			at := s.Now()
			ss.Post(i, dst, at, func() {
				fmt.Fprintf(&traces[dst], "mail s%d->s%d@%v\n", i, dst, shards[dst].Now())
			})
			s.After(time.Duration(1+s.Rand().Intn(7))*time.Millisecond, tick)
		}
		s.Schedule(0, tick)
	}
	errs := ss.RunEpochs(horizon, epoch, workers, nil)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
	counts := make([]uint64, n)
	var trace strings.Builder
	for i, s := range shards {
		if s.Now() != horizon {
			t.Fatalf("shard %d stopped at %v, want %v", i, s.Now(), horizon)
		}
		counts[i] = s.Executed()
		trace.WriteString(traces[i].String())
	}
	return trace.String(), counts
}

// TestShardSetDeterministicAcrossWorkers is the kernel-level determinism
// spec: the full event trace — firing order, clock stamps, RNG draws,
// mailbox deliveries — must be byte-identical at any worker count.
func TestShardSetDeterministicAcrossWorkers(t *testing.T) {
	const n = 5
	horizon, epoch := 200*time.Millisecond, 25*time.Millisecond
	refTrace, refCounts := shardTrace(t, n, 1, horizon, epoch)
	for _, workers := range []int{2, 3, runtime.GOMAXPROCS(0), 16} {
		got, counts := shardTrace(t, n, workers, horizon, epoch)
		if got != refTrace {
			t.Fatalf("workers=%d: trace diverged from workers=1", workers)
		}
		for i := range counts {
			if counts[i] != refCounts[i] {
				t.Fatalf("workers=%d: shard %d executed %d events, want %d",
					workers, i, counts[i], refCounts[i])
			}
		}
	}
}

// TestShardSetEpochChainEquivalence: driving one shard through many
// epochs must execute exactly the events a single Run to the horizon
// would (the chained-Run contract the epoch loop is built on).
func TestShardSetEpochChainEquivalence(t *testing.T) {
	build := func() *Simulator {
		s := New(WithSeed(7))
		var tick func()
		tick = func() {
			s.After(time.Duration(1+s.Rand().Intn(9))*time.Millisecond, tick)
		}
		s.Schedule(0, tick)
		return s
	}
	ref := build()
	if err := ref.Run(time.Second); err != nil {
		t.Fatalf("single run: %v", err)
	}
	sharded := build()
	ss := NewShardSet(sharded)
	for _, err := range ss.RunEpochs(time.Second, 10*time.Millisecond, 1, nil) {
		if err != nil {
			t.Fatalf("epochs: %v", err)
		}
	}
	if sharded.Executed() != ref.Executed() || sharded.Now() != ref.Now() {
		t.Fatalf("epoch chain executed %d events to %v, single run %d to %v",
			sharded.Executed(), sharded.Now(), ref.Executed(), ref.Now())
	}
}

// TestShardSetMailClampsToBarrier: a post stamped before the barrier
// instant must be delivered at the barrier, never silently dropped into
// the destination's past (Schedule refuses past events).
func TestShardSetMailClampsToBarrier(t *testing.T) {
	a, b := New(), New()
	ss := NewShardSet(a, b)
	var deliveredAt Time = -1
	a.Schedule(time.Millisecond, func() {
		ss.Post(0, 1, time.Millisecond, func() { deliveredAt = b.Now() })
	})
	for _, err := range ss.RunEpochs(100*time.Millisecond, 25*time.Millisecond, 1, nil) {
		if err != nil {
			t.Fatalf("epochs: %v", err)
		}
	}
	if deliveredAt != 25*time.Millisecond {
		t.Fatalf("mail delivered at %v, want clamped to the 25ms barrier", deliveredAt)
	}
}

// TestShardSetExchangeBarrier: the exchange hook must run after every
// epoch with all shard clocks parked at the boundary.
func TestShardSetExchangeBarrier(t *testing.T) {
	shards := []*Simulator{New(), New(), New()}
	for _, s := range shards {
		s := s
		var tick func()
		tick = func() { s.After(time.Millisecond, tick) }
		s.Schedule(0, tick)
	}
	ss := NewShardSet(shards...)
	var boundaries []Time
	errs := ss.RunEpochs(100*time.Millisecond, 30*time.Millisecond, 2, func(end Time) {
		for i, s := range shards {
			if s.Now() != end {
				t.Fatalf("shard %d clock %v at barrier %v", i, s.Now(), end)
			}
		}
		boundaries = append(boundaries, end)
	})
	for _, err := range errs {
		if err != nil {
			t.Fatalf("epochs: %v", err)
		}
	}
	want := []Time{30 * time.Millisecond, 60 * time.Millisecond, 90 * time.Millisecond, 100 * time.Millisecond}
	if len(boundaries) != len(want) {
		t.Fatalf("exchange ran at %v, want %v", boundaries, want)
	}
	for i := range want {
		if boundaries[i] != want[i] {
			t.Fatalf("exchange ran at %v, want %v", boundaries, want)
		}
	}
}

// TestShardSetPanicContained: a panicking handler fails its own shard
// with a wrapped error; the other shards finish the epoch normally.
func TestShardSetPanicContained(t *testing.T) {
	for _, workers := range []int{1, 2} {
		a, b := New(), New()
		fired := false
		a.Schedule(10*time.Millisecond, func() { panic("boom") })
		b.Schedule(20*time.Millisecond, func() { fired = true })
		errs := NewShardSet(a, b).RunEpochs(50*time.Millisecond, 25*time.Millisecond, workers, nil)
		if errs[0] == nil || !strings.Contains(errs[0].Error(), "panicked") {
			t.Fatalf("workers=%d: shard 0 error = %v, want contained panic", workers, errs[0])
		}
		if errs[1] != nil {
			t.Fatalf("workers=%d: shard 1 error = %v, want nil", workers, errs[1])
		}
		if !fired {
			t.Fatalf("workers=%d: healthy shard did not finish the abort epoch", workers)
		}
	}
}

// TestShardSetStopAborts: Stop in one shard surfaces ErrStopped and ends
// the run at the epoch barrier; the set of fired events stays
// worker-count independent because every other shard completes the epoch.
func TestShardSetStopAborts(t *testing.T) {
	a, b := New(), New()
	a.Schedule(5*time.Millisecond, func() { a.Stop() })
	late := false
	b.Schedule(40*time.Millisecond, func() { late = true })
	errs := NewShardSet(a, b).RunEpochs(100*time.Millisecond, 25*time.Millisecond, 1, nil)
	if !errors.Is(errs[0], ErrStopped) {
		t.Fatalf("shard 0 error = %v, want ErrStopped", errs[0])
	}
	if late {
		t.Fatal("epoch after the abort barrier still ran")
	}
}

// TestShardSetRaceHammer drives many shards hot across many short epochs
// with cross-shard mail and an exchange hook touching shared snapshot
// state — the -race acceptance test for the epoch-exchange path.
func TestShardSetRaceHammer(t *testing.T) {
	const n = 8
	shards := make([]*Simulator, n)
	for i := range shards {
		shards[i] = New(WithSeed(int64(i + 1)))
	}
	ss := NewShardSet(shards...)
	for i := range shards {
		i := i
		s := shards[i]
		var tick func()
		tick = func() {
			if s.Rand().Intn(4) == 0 {
				dst := s.Rand().Intn(n)
				ss.Post(i, dst, s.Now(), func() {})
			}
			s.After(time.Duration(1+s.Rand().Intn(3))*time.Millisecond, tick)
		}
		s.Schedule(0, tick)
	}
	snapshot := make([]uint64, n)
	errs := ss.RunEpochs(300*time.Millisecond, 5*time.Millisecond, runtime.GOMAXPROCS(0)+2,
		func(end Time) {
			for i, s := range shards {
				snapshot[i] = s.Executed()
			}
		})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if snapshot[i] != shards[i].Executed() {
			t.Fatalf("shard %d: final exchange snapshot %d != executed %d",
				i, snapshot[i], shards[i].Executed())
		}
	}
}

// TestShardSetEmptyAndSingle: degenerate sets run without epochs or
// goroutine machinery.
func TestShardSetEmptyAndSingle(t *testing.T) {
	if errs := NewShardSet().RunEpochs(time.Second, 0, 4, nil); len(errs) != 0 {
		t.Fatalf("empty set returned %d errors", len(errs))
	}
	s := New()
	fired := false
	s.Schedule(time.Millisecond, func() { fired = true })
	errs := NewShardSet(s).RunEpochs(time.Second, 0, 4, nil)
	if errs[0] != nil || !fired || s.Now() != time.Second {
		t.Fatalf("single-shard set: errs=%v fired=%v now=%v", errs, fired, s.Now())
	}
}
