// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a pending-event set ordered by
// (time, sequence). Events scheduled for the same instant fire in scheduling
// order (FIFO), which makes every run bit-for-bit reproducible given the same
// seed. There is no concurrency: all event handlers run on the caller's
// goroutine, so handlers may freely mutate shared simulation state without
// locks.
//
// Time is expressed as time.Duration offsets from the simulation start.
//
// # Kernel design
//
// The kernel is allocation-free in steady state. Event records live in a
// pooled slab ([]eventSlot) recycled through a free list; a generation
// counter per slot makes stale Event handles (to events that already fired
// or were cancelled and discarded) safe to Cancel. Pending events are routed
// to one of two structures:
//
//   - A slot-granularity timer wheel for events that land exactly on
//     Bluetooth's 625 µs slot grid (SlotGrain) within the wheel window
//     (wheelSlots slots ahead of the clock). In a piconet run this is the
//     overwhelming majority: master decision wake-ups, poll and SCO
//     completions, and CBR arrivals are all slot-aligned. Wheel insert and
//     pop are O(1), and draining a same-time batch walks a per-slot FIFO
//     list without any re-heapification.
//   - A concrete 4-ary min-heap of slot indices, keyed on (at, seq), for
//     everything else (off-grid times, or grid times beyond the wheel
//     window). The heap is index-based and monomorphic: no interface
//     dispatch and no per-push boxing, unlike container/heap.
//
// Because both structures can simultaneously hold events for the same
// instant (an on-grid event scheduled far ahead lands in the heap), every
// pop compares the earliest candidate of each by (at, seq) before firing, so
// the global FIFO guarantee holds regardless of routing.
//
// Determinism invariants: firing order is the strict lexicographic order of
// (at, seq); seq is assigned in Schedule call order; no kernel decision
// depends on map iteration, pointer values, or the free-list state. Two runs
// that issue the same Schedule/Cancel sequence observe the same firing
// sequence, always.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp: the elapsed simulated time since the start of
// the run. It is an alias (not a defined type) so that callers can use
// time.Duration arithmetic and constants directly.
type Time = time.Duration

// SlotGrain is the granularity of the timer-wheel fast path: the Bluetooth
// slot length (625 µs, matching baseband.SlotDuration). Events scheduled at
// an exact multiple of SlotGrain within the wheel window bypass the heap.
const SlotGrain = 625 * time.Microsecond

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Stop before reaching the requested horizon.
var ErrStopped = errors.New("sim: stopped")

// Handler is an event callback. It runs at the event's scheduled time.
type Handler func()

// noSlot marks an empty slot-index link (free list, wheel bucket, heap).
const noSlot int32 = -1

// eventSlot is the pooled storage for one scheduled event. Slots are
// recycled through a free list; gen increments on every recycle so that
// stale handles can be detected.
type eventSlot struct {
	at        Time
	seq       uint64
	fn        Handler
	next      int32 // wheel-bucket chain or free-list link
	gen       uint32
	cancelled bool
}

// Event is a handle to a scheduled event, used to cancel it before it fires.
// It is a small value (not a pointer): the underlying storage is pooled and
// recycled by the kernel, and the handle's generation counter detects
// staleness. The zero Event is valid to use and refers to no event.
type Event struct {
	s   *Simulator
	idx int32
	gen uint32
}

// slot returns the handle's pool slot if the handle still refers to it, or
// nil when the handle is zero or stale (the event fired or was discarded and
// its slot recycled).
func (e Event) slot() *eventSlot {
	if e.s == nil || e.idx < 0 || int(e.idx) >= len(e.s.events) {
		return nil
	}
	sl := &e.s.events[e.idx]
	if sl.gen != e.gen {
		return nil
	}
	return sl
}

// Pending reports whether the event is still scheduled and not cancelled.
// It returns false for the zero Event and for stale handles.
func (e Event) Pending() bool {
	sl := e.slot()
	return sl != nil && !sl.cancelled
}

// Cancelled reports whether Cancel has been called on the event and the
// event has not yet been discarded. Stale handles report false.
func (e Event) Cancelled() bool {
	sl := e.slot()
	return sl != nil && sl.cancelled
}

// At returns the virtual time the event is scheduled for, or zero when the
// handle is no longer pending.
func (e Event) At() Time {
	sl := e.slot()
	if sl == nil {
		return 0
	}
	return sl.at
}

// Cancel is shorthand for Simulator.Cancel on the event's simulator.
func (e Event) Cancel() {
	if e.s != nil {
		e.s.Cancel(e)
	}
}

// Simulator is a discrete-event simulator. Create one with New.
type Simulator struct {
	now     Time
	seq     uint64
	stopped bool
	rng     *rand.Rand
	// executed counts events that have fired (for diagnostics and tests).
	executed uint64
	// live counts scheduled, non-cancelled events (Pending's answer).
	live int

	// events is the pooled event slab; free heads its free list.
	events []eventSlot
	free   int32

	// heap holds slot indices of off-grid / far-future events as a 4-ary
	// min-heap on (at, seq).
	heap []int32

	// wheelHead/wheelTail are per-bucket FIFO chains of on-grid events.
	// wheelCount includes cancelled-but-undiscarded wheel events;
	// wheelNext is a lower bound on the earliest occupied wheel slot.
	wheelHead  []int32
	wheelTail  []int32
	wheelCount int
	wheelNext  int64
}

// Option configures a Simulator.
type Option func(*Simulator)

// WithSeed seeds the simulator's random number generator. The default seed
// is 1, so runs are deterministic even when no seed is supplied.
func WithSeed(seed int64) Option {
	return func(s *Simulator) {
		s.rng = rand.New(rand.NewSource(seed))
	}
}

// New returns a Simulator with its clock at zero.
func New(opts ...Option) *Simulator {
	s := &Simulator{
		rng:       rand.New(rand.NewSource(1)),
		free:      noSlot,
		wheelHead: make([]int32, wheelSlots),
		wheelTail: make([]int32, wheelSlots),
	}
	for i := range s.wheelHead {
		s.wheelHead[i] = noSlot
		s.wheelTail[i] = noSlot
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's random number generator. All stochastic model
// components must draw from this generator so that a run is reproducible
// from its seed.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events that have fired so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending returns the number of events currently scheduled and not
// cancelled. Cancelled events no longer count (they are discarded lazily,
// but a live-event counter keeps this exact).
func (s *Simulator) Pending() int { return s.live }

// alloc pops a slot off the free list, growing the slab when empty.
func (s *Simulator) alloc() int32 {
	if s.free != noSlot {
		idx := s.free
		s.free = s.events[idx].next
		return idx
	}
	s.events = append(s.events, eventSlot{})
	return int32(len(s.events) - 1)
}

// recycle returns a slot to the free list, bumping its generation so stale
// handles are detected and releasing the handler reference.
func (s *Simulator) recycle(idx int32) {
	sl := &s.events[idx]
	sl.gen++
	sl.fn = nil
	sl.next = s.free
	s.free = idx
}

// Schedule registers fn to run at the absolute virtual time at. Scheduling
// in the past (before Now) or with a nil handler is an error and returns the
// zero Event; models must never travel backwards in time.
func (s *Simulator) Schedule(at Time, fn Handler) Event {
	if at < s.now || fn == nil {
		return Event{}
	}
	idx := s.alloc()
	sl := &s.events[idx]
	sl.at = at
	sl.seq = s.seq
	sl.fn = fn
	sl.next = noSlot
	sl.cancelled = false
	s.seq++
	s.live++
	if at%SlotGrain == 0 {
		if slot := int64(at / SlotGrain); slot < s.cursor()+wheelSlots {
			s.wheelPush(slot, idx)
			return Event{s: s, idx: idx, gen: sl.gen}
		}
	}
	s.heapPush(idx)
	return Event{s: s, idx: idx, gen: sl.gen}
}

// After registers fn to run d after the current virtual time. A negative d
// is treated as zero.
func (s *Simulator) After(d time.Duration, fn Handler) Event {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now+d, fn)
}

// Cancel marks the event as cancelled so that it will be skipped when its
// time arrives. Cancelling the zero Event, an already-cancelled event, or a
// stale handle (the event fired, or its pool slot was recycled) is a no-op.
func (s *Simulator) Cancel(e Event) {
	if e.s != s {
		return
	}
	sl := e.slot()
	if sl == nil || sl.cancelled {
		return
	}
	sl.cancelled = true
	sl.fn = nil
	s.live--
}

// Stop makes the current or next Run call return ErrStopped after the
// currently executing handler (if any) finishes.
func (s *Simulator) Stop() { s.stopped = true }

// next selects the earliest live event without removing it, comparing the
// wheel's and the heap's earliest candidates by (at, seq). fromWheel tells
// which structure holds the winner.
func (s *Simulator) next() (idx int32, fromWheel, ok bool) {
	wIdx, wOK := s.wheelPeek()
	hIdx, hOK := s.heapPeek()
	switch {
	case !wOK && !hOK:
		return noSlot, false, false
	case !hOK:
		return wIdx, true, true
	case !wOK:
		return hIdx, false, true
	}
	w, h := &s.events[wIdx], &s.events[hIdx]
	if w.at != h.at {
		if w.at < h.at {
			return wIdx, true, true
		}
		return hIdx, false, true
	}
	if w.seq < h.seq {
		return wIdx, true, true
	}
	return hIdx, false, true
}

// fire removes the selected event, advances the clock and runs the handler.
// The slot is recycled before the handler runs, so handlers may schedule
// freely into the just-freed slot.
func (s *Simulator) fire(idx int32, fromWheel bool) {
	if fromWheel {
		s.wheelPopHead(idx)
	} else {
		s.heapPop()
	}
	sl := &s.events[idx]
	at, fn := sl.at, sl.fn
	s.recycle(idx)
	s.live--
	if at < s.now {
		// Defensive: the ordering invariant guarantees this never
		// happens; treat it as corruption.
		panic(fmt.Sprintf("sim: event at %v is before now %v", at, s.now))
	}
	s.now = at
	s.executed++
	fn()
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed (false when the
// queue is empty). Cancelled events are discarded without executing and
// without counting as a step.
func (s *Simulator) Step() bool {
	idx, fromWheel, ok := s.next()
	if !ok {
		return false
	}
	s.fire(idx, fromWheel)
	return true
}

// Run executes events in timestamp order until the queue is empty, the clock
// would pass horizon, or Stop is called. On a horizon stop the clock is set
// to exactly horizon, so subsequent scheduling resumes from there. Events
// scheduled exactly at horizon are executed.
func (s *Simulator) Run(horizon Time) error {
	if horizon < s.now {
		return fmt.Errorf("sim: horizon %v is before now %v", horizon, s.now)
	}
	s.stopped = false
	for {
		if s.stopped {
			return ErrStopped
		}
		idx, fromWheel, ok := s.next()
		if !ok || s.events[idx].at > horizon {
			s.now = horizon
			return nil
		}
		s.fire(idx, fromWheel)
	}
}

// RunAll executes events until the queue is empty or Stop is called.
func (s *Simulator) RunAll() error {
	s.stopped = false
	for {
		if s.stopped {
			return ErrStopped
		}
		if !s.Step() {
			return nil
		}
	}
}
