// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel maintains a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in scheduling order (FIFO), which makes
// every run bit-for-bit reproducible given the same seed. There is no
// concurrency: all event handlers run on the caller's goroutine, so handlers
// may freely mutate shared simulation state without locks.
//
// Time is expressed as time.Duration offsets from the simulation start.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Time is a virtual timestamp: the elapsed simulated time since the start of
// the run. It is an alias (not a defined type) so that callers can use
// time.Duration arithmetic and constants directly.
type Time = time.Duration

// ErrStopped is returned by Run when the simulation was stopped explicitly
// via Stop before reaching the requested horizon.
var ErrStopped = errors.New("sim: stopped")

// Handler is an event callback. It runs at the event's scheduled time.
type Handler func()

// Event is a handle to a scheduled event. It can be used to cancel the event
// before it fires. The zero value is not a valid event.
type Event struct {
	at        Time
	seq       uint64
	fn        Handler
	index     int // position in the heap, -1 once popped
	cancelled bool
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// Simulator is a discrete-event simulator. Create one with New.
type Simulator struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	rng     *rand.Rand
	// executed counts events that have fired (for diagnostics and tests).
	executed uint64
}

// Option configures a Simulator.
type Option func(*Simulator)

// WithSeed seeds the simulator's random number generator. The default seed
// is 1, so runs are deterministic even when no seed is supplied.
func WithSeed(seed int64) Option {
	return func(s *Simulator) {
		s.rng = rand.New(rand.NewSource(seed))
	}
}

// New returns a Simulator with its clock at zero.
func New(opts ...Option) *Simulator {
	s := &Simulator{
		rng: rand.New(rand.NewSource(1)),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Rand returns the simulator's random number generator. All stochastic model
// components must draw from this generator so that a run is reproducible
// from its seed.
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Executed returns the number of events that have fired so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// Pending returns the number of events currently scheduled (including
// cancelled events that have not yet been discarded).
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule registers fn to run at the absolute virtual time at. Scheduling
// in the past (before Now) is an error and returns nil; models must never
// travel backwards in time.
func (s *Simulator) Schedule(at Time, fn Handler) *Event {
	if at < s.now {
		return nil
	}
	if fn == nil {
		return nil
	}
	ev := &Event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return ev
}

// After registers fn to run d after the current virtual time. A negative d
// is treated as zero.
func (s *Simulator) After(d time.Duration, fn Handler) *Event {
	if d < 0 {
		d = 0
	}
	return s.Schedule(s.now+d, fn)
}

// Cancel marks the event as cancelled so that it will be skipped when its
// time arrives. Cancelling nil or an already-fired event is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil {
		return
	}
	e.cancelled = true
}

// Stop makes the current or next Run call return ErrStopped after the
// currently executing handler (if any) finishes.
func (s *Simulator) Stop() { s.stopped = true }

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed (false when the
// queue is empty). Cancelled events are discarded without executing and
// without counting as a step.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		ev := heap.Pop(&s.queue).(*Event)
		if ev.cancelled {
			continue
		}
		if ev.at < s.now {
			// Defensive: the heap invariant guarantees this never
			// happens; treat it as corruption.
			panic(fmt.Sprintf("sim: event at %v is before now %v", ev.at, s.now))
		}
		s.now = ev.at
		s.executed++
		ev.fn()
		return true
	}
	return false
}

// Run executes events in timestamp order until the queue is empty, the clock
// would pass horizon, or Stop is called. On a horizon stop the clock is set
// to exactly horizon, so subsequent scheduling resumes from there. Events
// scheduled exactly at horizon are executed.
func (s *Simulator) Run(horizon Time) error {
	if horizon < s.now {
		return fmt.Errorf("sim: horizon %v is before now %v", horizon, s.now)
	}
	s.stopped = false
	for {
		if s.stopped {
			return ErrStopped
		}
		next, ok := s.peek()
		if !ok || next > horizon {
			s.now = horizon
			return nil
		}
		s.Step()
	}
}

// RunAll executes events until the queue is empty or Stop is called.
func (s *Simulator) RunAll() error {
	s.stopped = false
	for {
		if s.stopped {
			return ErrStopped
		}
		if !s.Step() {
			return nil
		}
	}
}

// peek returns the timestamp of the earliest non-cancelled event.
func (s *Simulator) peek() (Time, bool) {
	for len(s.queue) > 0 {
		ev := s.queue[0]
		if ev.cancelled {
			heap.Pop(&s.queue)
			continue
		}
		return ev.at, true
	}
	return 0, false
}

// eventHeap is a min-heap on (at, seq). The seq tiebreak guarantees FIFO
// order for events scheduled at the same instant.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
