package sim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestNewStartsAtZero(t *testing.T) {
	s := New()
	if got := s.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
	if got := s.Pending(); got != 0 {
		t.Fatalf("Pending() = %d, want 0", got)
	}
}

func TestScheduleAndRunOrder(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(30*time.Millisecond, func() { order = append(order, 3) })
	s.Schedule(10*time.Millisecond, func() { order = append(order, 1) })
	s.Schedule(20*time.Millisecond, func() { order = append(order, 2) })
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	want := []int{1, 2, 3}
	if len(order) != len(want) {
		t.Fatalf("executed %d events, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if got := s.Now(); got != 30*time.Millisecond {
		t.Fatalf("Now() = %v, want 30ms", got)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		s.Schedule(time.Second, func() { order = append(order, i) })
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of order: order[%d] = %d", i, v)
		}
	}
}

func TestAfterRelative(t *testing.T) {
	s := New()
	var firedAt Time
	s.Schedule(5*time.Millisecond, func() {
		s.After(7*time.Millisecond, func() { firedAt = s.Now() })
	})
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if want := 12 * time.Millisecond; firedAt != want {
		t.Fatalf("nested After fired at %v, want %v", firedAt, want)
	}
}

func TestAfterNegativeClampsToNow(t *testing.T) {
	s := New()
	fired := false
	s.Schedule(time.Millisecond, func() {
		s.After(-time.Second, func() { fired = true })
	})
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if !fired {
		t.Fatal("event scheduled with negative delay never fired")
	}
}

func TestSchedulePastReturnsNil(t *testing.T) {
	s := New()
	s.Schedule(10*time.Millisecond, func() {})
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if ev := s.Schedule(5*time.Millisecond, func() {}); ev.Pending() {
		t.Fatal("scheduling in the past should return the zero Event")
	}
	if ev := s.Schedule(s.Now(), nil); ev.Pending() {
		t.Fatal("scheduling a nil handler should return the zero Event")
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	ev := s.Schedule(time.Millisecond, func() { fired = true })
	s.Cancel(ev)
	if !ev.Cancelled() {
		t.Fatal("event not marked cancelled")
	}
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Cancelling the zero Event must not panic.
	s.Cancel(Event{})
}

func TestRunHorizon(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{time.Millisecond, 2 * time.Millisecond, 3 * time.Millisecond} {
		at := at
		s.Schedule(at, func() { fired = append(fired, at) })
	}
	if err := s.Run(2 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events before horizon, want 2 (event at horizon included)", len(fired))
	}
	if got := s.Now(); got != 2*time.Millisecond {
		t.Fatalf("Now() = %v, want exactly the horizon", got)
	}
	// The remaining event must still fire on a later Run.
	if err := s.Run(time.Hour); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %d events total, want 3", len(fired))
	}
}

func TestRunHorizonBeforeNow(t *testing.T) {
	s := New()
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.Run(time.Millisecond); err == nil {
		t.Fatal("Run with horizon before now should fail")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 10; i++ {
		s.Schedule(Time(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	err := s.Run(time.Second)
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run returned %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("executed %d events, want 3", count)
	}
	// A subsequent Run resumes.
	if err := s.Run(time.Second); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	if count != 10 {
		t.Fatalf("executed %d events after resume, want 10", count)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func(seed int64) []Time {
		s := New(WithSeed(seed))
		var fired []Time
		var schedule func()
		n := 0
		schedule = func() {
			fired = append(fired, s.Now())
			n++
			if n < 200 {
				d := time.Duration(s.Rand().Intn(1000)) * time.Microsecond
				s.After(d, schedule)
			}
		}
		s.Schedule(0, schedule)
		if err := s.RunAll(); err != nil {
			t.Fatalf("RunAll: %v", err)
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at event %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical event timelines")
	}
}

func TestExecutedCounter(t *testing.T) {
	s := New()
	for i := 0; i < 5; i++ {
		s.Schedule(Time(i)*time.Millisecond, func() {})
	}
	ev := s.Schedule(10*time.Millisecond, func() {})
	s.Cancel(ev)
	if err := s.RunAll(); err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if got := s.Executed(); got != 5 {
		t.Fatalf("Executed() = %d, want 5 (cancelled events do not count)", got)
	}
}

// TestPropertyEventsFireInOrder is a property-based test: for any set of
// random timestamps, events fire in non-decreasing time order and every
// non-cancelled event fires exactly once.
func TestPropertyEventsFireInOrder(t *testing.T) {
	f := func(raw []uint32) bool {
		s := New()
		var fired []Time
		for _, r := range raw {
			at := Time(r%1_000_000) * time.Microsecond
			s.Schedule(at, func() { fired = append(fired, s.Now()) })
		}
		if err := s.RunAll(); err != nil {
			return false
		}
		if len(fired) != len(raw) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
			return false
		}
		// The multiset of fire times must equal the multiset of requested times.
		want := make([]Time, 0, len(raw))
		for _, r := range raw {
			want = append(want, Time(r%1_000_000)*time.Microsecond)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCancelSubset(t *testing.T) {
	f := func(raw []uint16, mask []bool) bool {
		s := New()
		fired := make(map[int]bool)
		events := make([]Event, len(raw))
		for i, r := range raw {
			i := i
			events[i] = s.Schedule(Time(r)*time.Microsecond, func() { fired[i] = true })
		}
		wantFired := 0
		for i := range events {
			cancel := i < len(mask) && mask[i]
			if cancel {
				s.Cancel(events[i])
			} else {
				wantFired++
			}
		}
		if err := s.RunAll(); err != nil {
			return false
		}
		if len(fired) != wantFired {
			return false
		}
		for i := range events {
			cancel := i < len(mask) && mask[i]
			if cancel == fired[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.Schedule(Time(j)*time.Microsecond, func() {})
		}
		if err := s.RunAll(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEventChurn(b *testing.B) {
	// Models the piconet pattern: a handful of pending events, each firing
	// schedules the next.
	s := New()
	var next func()
	n := 0
	next = func() {
		n++
		if n < b.N {
			s.After(625*time.Microsecond, next)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.Schedule(0, next)
	if err := s.RunAll(); err != nil {
		b.Fatal(err)
	}
}
