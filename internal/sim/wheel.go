package sim

// Slot-granularity timer wheel: the fast path for events on the 625 µs
// Bluetooth slot grid. The wheel is a ring of wheelSlots buckets, one per
// grid slot; bucket b chains (via eventSlot.next) the events whose absolute
// slot index S satisfies S % wheelSlots == b. Only events with S inside the
// window [cursor, cursor+wheelSlots) at scheduling time are admitted — later
// ones go to the heap — so at any moment every live wheel event is within
// one window of the clock and a bounded forward scan finds the earliest.
//
// Invariants:
//   - Bucket chains are appended in Schedule order, so per-slot FIFO (seq)
//     order is the chain order, and absolute slot indices are
//     non-decreasing from head to tail (the cursor never moves backwards,
//     so a wrapped future slot can only be appended after all earlier-lap
//     events have fired or been cancelled).
//   - wheelNext is a lower bound on the earliest occupied slot: Schedule
//     lowers it on insert, wheelPeek raises it past verified-empty slots.
//   - wheelCount includes cancelled-but-undiscarded events; it reaches zero
//     only when the wheel is truly empty.

// wheelSlots is the wheel window: 1024 slots = 640 ms of simulated time,
// far beyond any poll interval or SCO cadence the models schedule.
const wheelSlots = 1024

// cursor returns the smallest grid slot index not yet in the past.
func (s *Simulator) cursor() int64 {
	return int64((s.now + SlotGrain - 1) / SlotGrain)
}

// wheelPush appends the event (already validated on-grid and in-window) to
// its bucket's FIFO chain.
func (s *Simulator) wheelPush(slot int64, idx int32) {
	b := int(slot % wheelSlots)
	if s.wheelHead[b] == noSlot {
		s.wheelHead[b] = idx
	} else {
		s.events[s.wheelTail[b]].next = idx
	}
	s.wheelTail[b] = idx
	if s.wheelCount == 0 || slot < s.wheelNext {
		s.wheelNext = slot
	}
	s.wheelCount++
}

// wheelPeek returns the earliest live wheel event, scanning buckets forward
// from wheelNext and discarding cancelled events whose slot has been
// reached. The scan is amortised O(1): wheelNext only moves forward past
// slots verified empty, and every live event lies within one window.
func (s *Simulator) wheelPeek() (int32, bool) {
	if s.wheelCount == 0 {
		return noSlot, false
	}
	if c := s.cursor(); s.wheelNext < c {
		s.wheelNext = c
	}
	for scanned := 0; scanned <= wheelSlots; scanned++ {
		slot := s.wheelNext
		b := int(slot % wheelSlots)
		at := Time(slot) * SlotGrain
		for s.wheelHead[b] != noSlot {
			h := s.wheelHead[b]
			sl := &s.events[h]
			if sl.cancelled && sl.at <= at {
				// Dead remnant of this slot (or an earlier lap):
				// discard and recycle.
				s.wheelHead[b] = sl.next
				if s.wheelHead[b] == noSlot {
					s.wheelTail[b] = noSlot
				}
				s.wheelCount--
				s.recycle(h)
				continue
			}
			break
		}
		if h := s.wheelHead[b]; h != noSlot && s.events[h].at == at {
			return h, true
		}
		if s.wheelCount == 0 {
			return noSlot, false
		}
		s.wheelNext++
	}
	// Unreachable while the window invariant holds: every live wheel event
	// is within wheelSlots of the cursor.
	panic("sim: timer wheel scan exhausted the window")
}

// wheelPopHead unlinks the event returned by wheelPeek (necessarily the
// head of its bucket) from the wheel.
func (s *Simulator) wheelPopHead(idx int32) {
	sl := &s.events[idx]
	b := int(int64(sl.at/SlotGrain) % wheelSlots)
	s.wheelHead[b] = sl.next
	if s.wheelHead[b] == noSlot {
		s.wheelTail[b] = noSlot
	}
	s.wheelCount--
}
