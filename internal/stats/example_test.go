package stats_test

import (
	"fmt"

	"bluegs/internal/stats"
)

// Max–min fair division of leftover capacity, as PFP produces for the
// paper's best-effort slaves at a tight delay requirement: the smallest
// demand is served fully, the rest split what remains equally.
func ExampleMaxMinShares() {
	demands := []float64{83.2, 94.4, 105.6, 116.8} // kbps offered per slave
	shares := stats.MaxMinShares(350, demands)
	for i, s := range shares {
		fmt.Printf("S%d: %.1f of %.1f\n", i+4, s, demands[i])
	}
	// Output:
	// S4: 83.2 of 83.2
	// S5: 88.9 of 94.4
	// S6: 88.9 of 105.6
	// S7: 88.9 of 116.8
}

func ExampleFairness() {
	fmt.Printf("%.3f\n", stats.Fairness([]float64{64, 64, 64, 64}))
	fmt.Printf("%.3f\n", stats.Fairness([]float64{256, 0, 0, 0}))
	// Output:
	// 1.000
	// 0.250
}
