package stats

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Gob support for the accumulator types, so completed measurements can be
// persisted (the harness run cache stores scenario results on disk). The
// encodings capture the complete internal state — including the reservoir
// RNG state of Sample — so a decoded accumulator behaves bit-identically
// to the original under further Adds, and round-tripping preserves every
// statistic exactly (float64 bit patterns survive gob unchanged).

// welfordWire mirrors Welford's unexported state.
type welfordWire struct {
	N        uint64
	Mean, M2 float64
	Min, Max float64
}

// GobEncode implements gob.GobEncoder.
func (w Welford) GobEncode() ([]byte, error) {
	return encodeWire(welfordWire{N: w.n, Mean: w.mean, M2: w.m2, Min: w.min, Max: w.max})
}

// GobDecode implements gob.GobDecoder.
func (w *Welford) GobDecode(data []byte) error {
	var wire welfordWire
	if err := decodeWire(data, &wire); err != nil {
		return fmt.Errorf("stats: welford: %w", err)
	}
	*w = Welford{n: wire.N, mean: wire.Mean, m2: wire.M2, min: wire.Min, max: wire.Max}
	return nil
}

// sampleWire mirrors Sample's unexported state.
type sampleWire struct {
	Values []float64
	Sorted bool
	Cap    int
	Seen   uint64
	Rnd    uint64
}

// GobEncode implements gob.GobEncoder.
func (s Sample) GobEncode() ([]byte, error) {
	return encodeWire(sampleWire{Values: s.values, Sorted: s.sorted, Cap: s.cap, Seen: s.seen, Rnd: s.rnd})
}

// GobDecode implements gob.GobDecoder.
func (s *Sample) GobDecode(data []byte) error {
	var wire sampleWire
	if err := decodeWire(data, &wire); err != nil {
		return fmt.Errorf("stats: sample: %w", err)
	}
	*s = Sample{values: wire.Values, sorted: wire.Sorted, cap: wire.Cap, seen: wire.Seen, rnd: wire.Rnd}
	return nil
}

// durationStatsWire mirrors DurationStats' unexported state.
type durationStatsWire struct {
	W Welford
	S Sample
}

// GobEncode implements gob.GobEncoder.
func (d DurationStats) GobEncode() ([]byte, error) {
	return encodeWire(durationStatsWire{W: d.w, S: d.s})
}

// GobDecode implements gob.GobDecoder.
func (d *DurationStats) GobDecode(data []byte) error {
	var wire durationStatsWire
	if err := decodeWire(data, &wire); err != nil {
		return fmt.Errorf("stats: duration stats: %w", err)
	}
	*d = DurationStats{w: wire.W, s: wire.S}
	return nil
}

func encodeWire(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeWire(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
