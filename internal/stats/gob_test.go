package stats

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"testing"
	"time"
)

func roundTrip(t *testing.T, in, out any) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := gob.NewDecoder(&buf).Decode(out); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

func TestWelfordGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var w Welford
	for i := 0; i < 1000; i++ {
		w.Add(rng.NormFloat64() * 3.7)
	}
	var got Welford
	roundTrip(t, &w, &got)
	if got != w {
		t.Fatalf("round trip changed state: %+v vs %+v", got, w)
	}
	// Decoded accumulators must keep accumulating identically.
	w.Add(1.25)
	got.Add(1.25)
	if got != w {
		t.Fatal("post-decode Add diverged")
	}
}

func TestSampleGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := NewSample(64)
	for i := 0; i < 500; i++ {
		s.Add(rng.Float64())
	}
	var got Sample
	roundTrip(t, s, &got)
	if got.Count() != s.Count() || got.Retained() != s.Retained() {
		t.Fatalf("counts drifted: %d/%d vs %d/%d", got.Count(), got.Retained(), s.Count(), s.Retained())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got.Quantile(q) != s.Quantile(q) {
			t.Fatalf("quantile %v drifted", q)
		}
	}
	// The reservoir RNG state travels too: identical future replacement
	// decisions on both copies.
	for i := 0; i < 500; i++ {
		x := rng.Float64()
		s.Add(x)
		got.Add(x)
	}
	a, b := s.Values(), got.Values()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reservoir diverged at %d after decode", i)
		}
	}
}

func TestDurationStatsGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDurationStats(128)
	for i := 0; i < 1000; i++ {
		d.Add(time.Duration(rng.Int63n(int64(50 * time.Millisecond))))
	}
	var got DurationStats
	roundTrip(t, d, &got)
	if got.Count() != d.Count() || got.Mean() != d.Mean() || got.Max() != d.Max() ||
		got.Min() != d.Min() || got.StdDev() != d.StdDev() {
		t.Fatal("moments drifted through gob")
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if got.Quantile(q) != d.Quantile(q) {
			t.Fatalf("quantile %v drifted", q)
		}
	}
}
