package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// Histogram is a fixed-bin histogram over a bounded range with overflow and
// underflow buckets. Create with NewHistogram.
type Histogram struct {
	lo, hi    float64
	binWidth  float64
	bins      []uint64
	underflow uint64
	overflow  uint64
	count     uint64
}

// NewHistogram returns a histogram of n equal-width bins covering [lo, hi).
// Invalid shapes (n <= 0, hi <= lo) are normalised to a single bin.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	if hi <= lo {
		hi = lo + 1
	}
	return &Histogram{
		lo:       lo,
		hi:       hi,
		binWidth: (hi - lo) / float64(n),
		bins:     make([]uint64, n),
	}
}

// Add incorporates one observation.
func (h *Histogram) Add(x float64) {
	h.count++
	switch {
	case x < h.lo:
		h.underflow++
	case x >= h.hi:
		h.overflow++
	default:
		idx := int((x - h.lo) / h.binWidth)
		if idx >= len(h.bins) { // float edge
			idx = len(h.bins) - 1
		}
		h.bins[idx]++
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count }

// Overflow returns the count of observations at or above the upper bound.
func (h *Histogram) Overflow() uint64 { return h.overflow }

// Underflow returns the count of observations below the lower bound.
func (h *Histogram) Underflow() uint64 { return h.underflow }

// Bin returns the [lower, upper) edges and count of bin i.
func (h *Histogram) Bin(i int) (lower, upper float64, count uint64) {
	if i < 0 || i >= len(h.bins) {
		return 0, 0, 0
	}
	lower = h.lo + float64(i)*h.binWidth
	return lower, lower + h.binWidth, h.bins[i]
}

// NumBins returns the number of bins.
func (h *Histogram) NumBins() int { return len(h.bins) }

// CumulativeAt returns the fraction of observations strictly below x
// (an empirical CDF evaluated at bin granularity).
func (h *Histogram) CumulativeAt(x float64) float64 {
	if h.count == 0 {
		return 0
	}
	below := h.underflow
	for i := range h.bins {
		lower, upper, c := h.Bin(i)
		if upper <= x {
			below += c
			continue
		}
		if lower < x {
			// Linear interpolation within the bin.
			frac := (x - lower) / h.binWidth
			below += uint64(float64(c) * frac)
		}
		break
	}
	return float64(below) / float64(h.count)
}

// WriteASCII renders the histogram as a bar chart. labeler converts bin
// edges to strings (nil uses %.3g); width is the maximum bar width in
// characters.
func (h *Histogram) WriteASCII(w io.Writer, labeler func(float64) string, width int) error {
	if labeler == nil {
		labeler = func(v float64) string { return fmt.Sprintf("%.3g", v) }
	}
	if width <= 0 {
		width = 50
	}
	var maxCount uint64
	for _, c := range h.bins {
		if c > maxCount {
			maxCount = c
		}
	}
	if h.underflow > 0 {
		if _, err := fmt.Fprintf(w, "%12s  %d\n", "< "+labeler(h.lo), h.underflow); err != nil {
			return err
		}
	}
	for i := range h.bins {
		lower, _, c := h.Bin(i)
		bar := ""
		if maxCount > 0 {
			n := int(math.Round(float64(c) / float64(maxCount) * float64(width)))
			bar = strings.Repeat("#", n)
		}
		if _, err := fmt.Fprintf(w, "%12s  %-*s %d\n", labeler(lower), width, bar, c); err != nil {
			return err
		}
	}
	if h.overflow > 0 {
		if _, err := fmt.Fprintf(w, "%12s  %d\n", ">= "+labeler(h.hi), h.overflow); err != nil {
			return err
		}
	}
	return nil
}

// DurationHistogram wraps Histogram for time.Duration observations.
type DurationHistogram struct {
	h *Histogram
}

// NewDurationHistogram covers [0, max) with n bins.
func NewDurationHistogram(max time.Duration, n int) *DurationHistogram {
	return &DurationHistogram{h: NewHistogram(0, float64(max), n)}
}

// Add incorporates one duration.
func (d *DurationHistogram) Add(v time.Duration) { d.h.Add(float64(v)) }

// Count returns the number of observations.
func (d *DurationHistogram) Count() uint64 { return d.h.Count() }

// Overflow returns observations at or beyond the range.
func (d *DurationHistogram) Overflow() uint64 { return d.h.Overflow() }

// CumulativeAt returns the empirical CDF at the given duration.
func (d *DurationHistogram) CumulativeAt(v time.Duration) float64 {
	return d.h.CumulativeAt(float64(v))
}

// WriteASCII renders the histogram with millisecond labels.
func (d *DurationHistogram) WriteASCII(w io.Writer, width int) error {
	return d.h.WriteASCII(w, func(v float64) string {
		return time.Duration(v).Round(10 * time.Microsecond).String()
	}, width)
}
