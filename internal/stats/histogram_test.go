package stats

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Count() != 8 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Underflow() != 1 || h.Overflow() != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", h.Underflow(), h.Overflow())
	}
	wantBins := []uint64{2, 1, 1, 0, 1} // [0,2): {0,1.9}; [2,4): {2}; [4,6): {5}; [8,10): {9.99}
	for i, want := range wantBins {
		lo, hi, c := h.Bin(i)
		if c != want {
			t.Fatalf("bin %d [%v,%v) = %d, want %d", i, lo, hi, c, want)
		}
	}
	if _, _, c := h.Bin(99); c != 0 {
		t.Fatal("out-of-range bin should be empty")
	}
}

func TestHistogramDegenerateShape(t *testing.T) {
	h := NewHistogram(5, 5, 0)
	h.Add(5)
	if h.NumBins() != 1 || h.Count() != 1 {
		t.Fatalf("degenerate histogram: bins=%d count=%d", h.NumBins(), h.Count())
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	if got := h.CumulativeAt(0); got != 0 {
		t.Fatalf("CDF(0) = %v", got)
	}
	if got := h.CumulativeAt(50); got < 0.45 || got > 0.55 {
		t.Fatalf("CDF(50) = %v, want ~0.5", got)
	}
	if got := h.CumulativeAt(1000); got != 1 {
		t.Fatalf("CDF(1000) = %v, want 1", got)
	}
	var empty Histogram
	if got := empty.CumulativeAt(1); got != 0 {
		t.Fatalf("empty CDF = %v", got)
	}
}

func TestHistogramASCII(t *testing.T) {
	h := NewHistogram(0, 4, 2)
	h.Add(-1)
	h.Add(1)
	h.Add(1)
	h.Add(3)
	h.Add(9)
	var sb strings.Builder
	if err := h.WriteASCII(&sb, nil, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"< 0", ">= 4", "##"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ASCII output missing %q:\n%s", want, out)
		}
	}
}

func TestDurationHistogram(t *testing.T) {
	d := NewDurationHistogram(50*time.Millisecond, 10)
	for i := 0; i < 100; i++ {
		d.Add(time.Duration(i) * 500 * time.Microsecond) // 0..49.5ms
	}
	if d.Count() != 100 || d.Overflow() != 0 {
		t.Fatalf("count=%d overflow=%d", d.Count(), d.Overflow())
	}
	if got := d.CumulativeAt(25 * time.Millisecond); got < 0.45 || got > 0.55 {
		t.Fatalf("CDF(25ms) = %v", got)
	}
	var sb strings.Builder
	if err := d.WriteASCII(&sb, 20); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ms") {
		t.Fatalf("duration labels missing:\n%s", sb.String())
	}
}

// TestPropertyHistogramConservation: every observation lands in exactly one
// bucket (bins + underflow + overflow == count), and the CDF is monotone.
func TestPropertyHistogramConservation(t *testing.T) {
	f := func(raw []int16) bool {
		h := NewHistogram(-100, 100, 8)
		for _, r := range raw {
			h.Add(float64(r))
		}
		var total uint64 = h.Underflow() + h.Overflow()
		for i := 0; i < h.NumBins(); i++ {
			_, _, c := h.Bin(i)
			total += c
		}
		if total != h.Count() || h.Count() != uint64(len(raw)) {
			return false
		}
		prev := -1.0
		for x := -150.0; x <= 150; x += 10 {
			cdf := h.CumulativeAt(x)
			if cdf < prev-1e-12 || cdf < 0 || cdf > 1 {
				return false
			}
			prev = cdf
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(97))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
