// Package stats provides the measurement substrate for the simulation:
// streaming moments (Welford), exact-quantile sample stores, duration
// statistics, throughput meters, and text/CSV table rendering for the
// experiment harness.
package stats

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Welford accumulates streaming mean and variance using Welford's online
// algorithm. The zero value is an empty accumulator ready to use.
type Welford struct {
	n        uint64
	mean, m2 float64
	min, max float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// Count returns the number of observations.
func (w *Welford) Count() uint64 { return w.n }

// Mean returns the sample mean (zero when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (zero for fewer than two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (zero when empty).
func (w *Welford) Min() float64 {
	if w.n == 0 {
		return 0
	}
	return w.min
}

// Max returns the largest observation (zero when empty).
func (w *Welford) Max() float64 {
	if w.n == 0 {
		return 0
	}
	return w.max
}

// Sample stores observations for exact quantile queries. The zero value is
// ready to use and stores every observation; use NewSample to bound memory
// with reservoir sampling.
type Sample struct {
	values []float64
	sorted bool
	cap    int
	seen   uint64
	// rnd is a tiny xorshift state for reservoir replacement; avoiding
	// math/rand keeps the zero value usable without a constructor.
	rnd uint64
}

// NewSample returns a Sample that keeps at most capacity observations using
// reservoir sampling (capacity <= 0 means unbounded).
func NewSample(capacity int) *Sample {
	return &Sample{cap: capacity, rnd: 0x9E3779B97F4A7C15}
}

// Add incorporates one observation.
func (s *Sample) Add(x float64) {
	s.seen++
	if s.cap <= 0 || len(s.values) < s.cap {
		s.values = append(s.values, x)
		s.sorted = false
		return
	}
	// Reservoir replacement with probability cap/seen.
	s.rnd ^= s.rnd << 13
	s.rnd ^= s.rnd >> 7
	s.rnd ^= s.rnd << 17
	idx := s.rnd % s.seen
	if idx < uint64(s.cap) {
		s.values[idx] = x
		s.sorted = false
	}
}

// Count returns the number of observations seen (not the retained count).
func (s *Sample) Count() uint64 { return s.seen }

// Retained returns how many observations are held.
func (s *Sample) Retained() int { return len(s.values) }

// Quantile returns the q-quantile (0 <= q <= 1) of the retained
// observations using linear interpolation; zero when empty.
func (s *Sample) Quantile(q float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if q <= 0 {
		return s.values[0]
	}
	if q >= 1 {
		return s.values[len(s.values)-1]
	}
	pos := q * float64(len(s.values)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.values[lo]
	}
	frac := pos - float64(lo)
	return s.values[lo]*(1-frac) + s.values[hi]*frac
}

// Max returns the largest retained observation (zero when empty).
func (s *Sample) Max() float64 { return s.Quantile(1) }

// Min returns the smallest retained observation (zero when empty).
func (s *Sample) Min() float64 { return s.Quantile(0) }

// Values returns a copy of the retained observations (unspecified order).
func (s *Sample) Values() []float64 {
	return append([]float64(nil), s.values...)
}

// DurationStats accumulates statistics over time.Duration observations,
// combining streaming moments with an exact-quantile sample. The zero value
// is ready to use (unbounded sample).
type DurationStats struct {
	w Welford
	s Sample
}

// NewDurationStats bounds the retained sample to capacity observations.
func NewDurationStats(capacity int) *DurationStats {
	return &DurationStats{s: *NewSample(capacity)}
}

// Add incorporates one duration observation.
func (d *DurationStats) Add(v time.Duration) {
	x := float64(v)
	d.w.Add(x)
	d.s.Add(x)
}

// Count returns the number of observations.
func (d *DurationStats) Count() uint64 { return d.w.Count() }

// Mean returns the mean duration.
func (d *DurationStats) Mean() time.Duration { return time.Duration(d.w.Mean()) }

// StdDev returns the standard deviation.
func (d *DurationStats) StdDev() time.Duration { return time.Duration(d.w.StdDev()) }

// Min returns the smallest observation.
func (d *DurationStats) Min() time.Duration { return time.Duration(d.w.Min()) }

// Max returns the largest observation. Unlike the quantile sample, this is
// exact even when the sample is bounded.
func (d *DurationStats) Max() time.Duration { return time.Duration(d.w.Max()) }

// Quantile returns the q-quantile of the retained sample.
func (d *DurationStats) Quantile(q float64) time.Duration {
	return time.Duration(d.s.Quantile(q))
}

// FillHistogram adds every retained observation into the histogram (for
// rendering delay distributions after a run).
func (d *DurationStats) FillHistogram(h *DurationHistogram) {
	if h == nil {
		return
	}
	for _, v := range d.s.Values() {
		h.Add(time.Duration(v))
	}
}

// Meter counts bytes and packets and converts them to rates over a given
// elapsed time. The zero value is ready to use.
type Meter struct {
	bytes   uint64
	packets uint64
}

// Add records one packet of n bytes.
func (m *Meter) Add(n int) {
	if n < 0 {
		return
	}
	m.bytes += uint64(n)
	m.packets++
}

// Unadd reverses one Add of n bytes: batched traffic sources that
// pre-count future packets use it to uncount packets whose arrival never
// happens (flow retired, piconet removed). Underflow clamps to zero.
func (m *Meter) Unadd(n int) {
	if n < 0 {
		return
	}
	if m.bytes >= uint64(n) {
		m.bytes -= uint64(n)
	} else {
		m.bytes = 0
	}
	if m.packets > 0 {
		m.packets--
	}
}

// Bytes returns the accumulated byte count.
func (m *Meter) Bytes() uint64 { return m.bytes }

// Packets returns the accumulated packet count.
func (m *Meter) Packets() uint64 { return m.packets }

// BitsPerSecond returns the average bit rate over elapsed (zero for
// non-positive elapsed).
func (m *Meter) BitsPerSecond(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(m.bytes) * 8 / elapsed.Seconds()
}

// Kbps returns the average rate in kilobits per second.
func (m *Meter) Kbps(elapsed time.Duration) float64 {
	return m.BitsPerSecond(elapsed) / 1000
}

// Fairness computes Jain's fairness index over a set of allocations:
// (sum x)^2 / (n * sum x^2). It is 1 for perfectly equal allocations and
// 1/n when a single participant receives everything. Returns 1 for empty or
// all-zero input (vacuously fair).
func Fairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// MaxMinShares computes the max–min fair allocation of a total capacity to
// demands: every demand receives min(demand, fair level), with the level
// chosen so the capacity is exhausted (or all demands met). The returned
// slice is aligned with demands.
func MaxMinShares(capacity float64, demands []float64) []float64 {
	out := make([]float64, len(demands))
	if capacity <= 0 || len(demands) == 0 {
		return out
	}
	type entry struct {
		idx    int
		demand float64
	}
	order := make([]entry, 0, len(demands))
	for i, d := range demands {
		if d < 0 {
			d = 0
		}
		order = append(order, entry{idx: i, demand: d})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].demand < order[j].demand })
	remaining := capacity
	for i, e := range order {
		share := remaining / float64(len(order)-i)
		if e.demand <= share {
			out[e.idx] = e.demand
			remaining -= e.demand
		} else {
			out[e.idx] = share
			remaining -= share
		}
	}
	return out
}

// FormatKbps renders a rate with one decimal, e.g. "64.0".
func FormatKbps(v float64) string { return fmt.Sprintf("%.1f", v) }
