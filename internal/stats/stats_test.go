package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestWelfordAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var w Welford
	var xs []float64
	for i := 0; i < 1000; i++ {
		x := rng.NormFloat64()*5 + 10
		xs = append(xs, x)
		w.Add(x)
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		sq += (x - mean) * (x - mean)
	}
	variance := sq / float64(len(xs)-1)
	if math.Abs(w.Mean()-mean) > 1e-9 {
		t.Fatalf("Mean = %v, naive %v", w.Mean(), mean)
	}
	if math.Abs(w.Variance()-variance) > 1e-6 {
		t.Fatalf("Variance = %v, naive %v", w.Variance(), variance)
	}
	mn, mx := xs[0], xs[0]
	for _, x := range xs {
		mn = math.Min(mn, x)
		mx = math.Max(mx, x)
	}
	if w.Min() != mn || w.Max() != mx {
		t.Fatalf("Min/Max = %v/%v, naive %v/%v", w.Min(), w.Max(), mn, mx)
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Min() != 0 || w.Max() != 0 || w.Count() != 0 {
		t.Fatal("empty Welford should be all-zero")
	}
	w.Add(42)
	if w.Mean() != 42 || w.Variance() != 0 || w.Min() != 42 || w.Max() != 42 {
		t.Fatalf("single-observation Welford wrong: %+v", w)
	}
}

func TestSampleQuantiles(t *testing.T) {
	s := NewSample(0)
	for i := 100; i >= 1; i-- {
		s.Add(float64(i))
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("Q0 = %v, want 1", got)
	}
	if got := s.Quantile(1); got != 100 {
		t.Fatalf("Q1 = %v, want 100", got)
	}
	if got := s.Quantile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("median = %v, want 50.5", got)
	}
	if got := s.Quantile(0.99); math.Abs(got-99.01) > 1e-9 {
		t.Fatalf("p99 = %v, want 99.01", got)
	}
}

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.Quantile(0.5) != 0 || s.Max() != 0 || s.Min() != 0 {
		t.Fatal("empty sample should return zeros")
	}
}

func TestSampleReservoirBounded(t *testing.T) {
	s := NewSample(100)
	for i := 0; i < 10000; i++ {
		s.Add(float64(i))
	}
	if s.Retained() != 100 {
		t.Fatalf("Retained = %d, want 100", s.Retained())
	}
	if s.Count() != 10000 {
		t.Fatalf("Count = %d, want 10000", s.Count())
	}
	// The retained sample should roughly span the input range.
	if s.Min() > 5000 || s.Max() < 5000 {
		t.Fatalf("reservoir sample badly skewed: min %v max %v", s.Min(), s.Max())
	}
}

func TestDurationStats(t *testing.T) {
	d := NewDurationStats(0)
	for i := 1; i <= 10; i++ {
		d.Add(time.Duration(i) * time.Millisecond)
	}
	if d.Count() != 10 {
		t.Fatalf("Count = %d", d.Count())
	}
	if got := d.Mean(); got != 5500*time.Microsecond {
		t.Fatalf("Mean = %v, want 5.5ms", got)
	}
	if got := d.Max(); got != 10*time.Millisecond {
		t.Fatalf("Max = %v, want 10ms", got)
	}
	if got := d.Min(); got != time.Millisecond {
		t.Fatalf("Min = %v, want 1ms", got)
	}
	if got := d.Quantile(0.5); got != 5500*time.Microsecond {
		t.Fatalf("median = %v, want 5.5ms", got)
	}
	var zero DurationStats
	zero.Add(time.Second)
	if zero.Max() != time.Second {
		t.Fatal("zero-value DurationStats not usable")
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	m.Add(1000)
	m.Add(1000)
	m.Add(-5) // ignored
	if m.Bytes() != 2000 || m.Packets() != 2 {
		t.Fatalf("Meter = %d bytes %d packets", m.Bytes(), m.Packets())
	}
	if got := m.BitsPerSecond(time.Second); got != 16000 {
		t.Fatalf("BitsPerSecond = %v, want 16000", got)
	}
	if got := m.Kbps(2 * time.Second); got != 8 {
		t.Fatalf("Kbps = %v, want 8", got)
	}
	if got := m.BitsPerSecond(0); got != 0 {
		t.Fatalf("BitsPerSecond(0) = %v, want 0", got)
	}
}

func TestFairness(t *testing.T) {
	if got := Fairness(nil); got != 1 {
		t.Fatalf("Fairness(nil) = %v, want 1", got)
	}
	if got := Fairness([]float64{0, 0}); got != 1 {
		t.Fatalf("Fairness(zeros) = %v, want 1", got)
	}
	if got := Fairness([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Fairness(equal) = %v, want 1", got)
	}
	if got := Fairness([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("Fairness(single) = %v, want 0.25", got)
	}
}

func TestMaxMinShares(t *testing.T) {
	tests := []struct {
		name     string
		capacity float64
		demands  []float64
		want     []float64
	}{
		{"ample capacity", 100, []float64{10, 20, 30}, []float64{10, 20, 30}},
		{"equal split when all exceed", 30, []float64{100, 100, 100}, []float64{10, 10, 10}},
		{"small demand protected", 30, []float64{5, 100, 100}, []float64{5, 12.5, 12.5}},
		{"paper BE demands tight", 300, []float64{83.2, 94.4, 105.6, 116.8}, []float64{75, 75, 75, 75}},
		{"zero capacity", 0, []float64{1, 2}, []float64{0, 0}},
		{"empty demands", 10, nil, nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := MaxMinShares(tt.capacity, tt.demands)
			if len(got) != len(tt.want) {
				t.Fatalf("len = %d, want %d", len(got), len(tt.want))
			}
			for i := range got {
				if math.Abs(got[i]-tt.want[i]) > 1e-9 {
					t.Fatalf("shares = %v, want %v", got, tt.want)
				}
			}
		})
	}
}

// TestPropertyMaxMinInvariants: shares never exceed demand, never exceed
// capacity in total, and unmet demand implies all unmet flows got an equal
// (maximal) share.
func TestPropertyMaxMinInvariants(t *testing.T) {
	f := func(capRaw uint16, demandRaw []uint16) bool {
		capacity := float64(capRaw % 1000)
		demands := make([]float64, len(demandRaw))
		for i, d := range demandRaw {
			demands[i] = float64(d % 500)
		}
		shares := MaxMinShares(capacity, demands)
		if len(shares) != len(demands) {
			return false
		}
		total := 0.0
		for i, s := range shares {
			if s < -1e-9 || s > demands[i]+1e-9 {
				return false
			}
			total += s
		}
		if total > capacity+1e-6 {
			return false
		}
		// All capped flows receive the same level.
		level := -1.0
		for i, s := range shares {
			if s < demands[i]-1e-9 { // capped
				if level < 0 {
					level = s
				} else if math.Abs(s-level) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyQuantileMatchesSorted: for unbounded samples, Quantile(k/(n-1))
// equals the k-th sorted value.
func TestPropertyQuantileMatchesSorted(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSample(0)
		vals := make([]float64, len(raw))
		for i, r := range raw {
			vals[i] = float64(r)
			s.Add(float64(r))
		}
		sort.Float64s(vals)
		for k := range vals {
			q := 0.0
			if len(vals) > 1 {
				q = float64(k) / float64(len(vals)-1)
			}
			if math.Abs(s.Quantile(q)-vals[k]) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(47))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestTableText(t *testing.T) {
	tbl := NewTable("Figure X", "slave", "kbps")
	tbl.AddRow("S1", 64.0)
	tbl.AddRow("S2", 128.0)
	out := tbl.String()
	if !strings.Contains(out, "Figure X") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "slave") || !strings.Contains(out, "S2") {
		t.Fatalf("missing cells:\n%s", out)
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
	rows := tbl.Rows()
	if rows[0][0] != "S1" || rows[1][1] != "128" {
		t.Fatalf("Rows = %v", rows)
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("t", "a", "b")
	tbl.AddRow("x,y", `quote"me`)
	tbl.AddRow(1) // short row padded
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "a,b\n\"x,y\",\"quote\"\"me\"\n1,\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
