package stats

import (
	"fmt"
	"math"
)

// Summary condenses a set of replicated measurements (one value per
// independently seeded run) into the quantities the experiment tables
// report: mean, extremes, and the 95% confidence interval of the mean.
type Summary struct {
	N    int
	Mean float64
	Min  float64
	Max  float64
	// StdDev is the unbiased sample standard deviation (zero for N < 2).
	StdDev float64
	// CI95 is the half-width of the two-sided 95% confidence interval of
	// the mean, using the Student t quantile for N-1 degrees of freedom
	// (zero for N < 2).
	CI95 float64
}

// Summarize computes the Summary of a set of measurements.
func Summarize(xs []float64) Summary {
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	return w.Summary()
}

// Summary condenses the accumulator into a Summary.
func (w *Welford) Summary() Summary {
	s := Summary{
		N:      int(w.Count()),
		Mean:   w.Mean(),
		Min:    w.Min(),
		Max:    w.Max(),
		StdDev: w.StdDev(),
	}
	if s.N >= 2 {
		s.CI95 = tQuantile975(s.N-1) * s.StdDev / math.Sqrt(float64(s.N))
	}
	return s
}

// FormatMeanCI renders "mean±ci" with one decimal each (e.g. "256.0±1.2"),
// degrading to the bare mean when no interval is available.
func (s Summary) FormatMeanCI() string {
	if s.N < 2 || s.CI95 == 0 {
		return fmt.Sprintf("%.1f", s.Mean)
	}
	return fmt.Sprintf("%.1f±%.1f", s.Mean, s.CI95)
}

// tTable975 holds the 0.975 quantile of the Student t distribution for
// 1..30 degrees of freedom; beyond that the normal quantile 1.96 is close
// enough for reporting purposes.
var tTable975 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

func tQuantile975(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tTable975) {
		return tTable975[df-1]
	}
	return 1.96
}

// Merge folds another accumulator into w, as if every observation of other
// had been Added to w (Chan et al.'s parallel update, exact up to floating
// point). Replicated simulation runs each own a Welford; merging them
// yields the pooled moments without retaining samples.
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	n := w.n + other.n
	delta := other.mean - w.mean
	w.mean += delta * float64(other.n) / float64(n)
	w.m2 += other.m2 + delta*delta*float64(w.n)*float64(other.n)/float64(n)
	w.n = n
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
}

// Merge folds another sample store into s: every retained observation of
// other is Added (subject to s's own reservoir bound), and observations
// other saw but did not retain still count toward s's seen total so that
// Count and later reservoir-replacement probabilities stay honest.
func (s *Sample) Merge(other *Sample) {
	if other == nil {
		return
	}
	for _, v := range other.values {
		s.Add(v)
	}
	s.seen += other.seen - uint64(len(other.values))
}

// Merge folds another DurationStats into d: moments and extremes merge
// exactly; the quantile sample absorbs other's retained observations.
func (d *DurationStats) Merge(other *DurationStats) {
	if other == nil {
		return
	}
	d.w.Merge(other.w)
	d.s.Merge(&other.s)
}
