package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	wantSD := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev-wantSD) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", s.StdDev, wantSD)
	}
	// CI95 = t_{0.975,7} * sd / sqrt(8).
	wantCI := 2.365 * wantSD / math.Sqrt(8)
	if math.Abs(s.CI95-wantCI) > 1e-9 {
		t.Fatalf("ci95 = %v, want %v", s.CI95, wantCI)
	}
}

func TestSummarizeDegenerate(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.CI95 != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.CI95 != 0 || s.StdDev != 0 {
		t.Fatalf("single-value summary = %+v", s)
	}
	if got := s.FormatMeanCI(); got != "42.0" {
		t.Fatalf("FormatMeanCI = %q", got)
	}
}

func TestFormatMeanCI(t *testing.T) {
	s := Summarize([]float64{10, 12, 14})
	got := s.FormatMeanCI()
	if !strings.Contains(got, "±") || !strings.HasPrefix(got, "12.0") {
		t.Fatalf("FormatMeanCI = %q", got)
	}
}

func TestTQuantileMonotone(t *testing.T) {
	for df := 1; df < 40; df++ {
		q := tQuantile975(df)
		if q < 1.95 {
			t.Fatalf("t(%d) = %v below the normal quantile", df, q)
		}
		if df > 1 && q > tQuantile975(df-1) {
			t.Fatalf("t not non-increasing at df %d", df)
		}
	}
	if tQuantile975(0) != 0 {
		t.Fatal("df 0 must be 0")
	}
}

func TestWelfordMergeMatchesSerial(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7}
	var serial Welford
	for _, x := range xs {
		serial.Add(x)
	}
	for split := 0; split <= len(xs); split++ {
		var a, b Welford
		for _, x := range xs[:split] {
			a.Add(x)
		}
		for _, x := range xs[split:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.Count() != serial.Count() {
			t.Fatalf("split %d: count %d", split, a.Count())
		}
		if math.Abs(a.Mean()-serial.Mean()) > 1e-12 {
			t.Fatalf("split %d: mean %v vs %v", split, a.Mean(), serial.Mean())
		}
		if math.Abs(a.Variance()-serial.Variance()) > 1e-9 {
			t.Fatalf("split %d: var %v vs %v", split, a.Variance(), serial.Variance())
		}
		if a.Min() != serial.Min() || a.Max() != serial.Max() {
			t.Fatalf("split %d: min/max %v/%v", split, a.Min(), a.Max())
		}
	}
}

func TestDurationStatsMerge(t *testing.T) {
	var a, b, pooled DurationStats
	for i := 1; i <= 10; i++ {
		d := time.Duration(i) * time.Millisecond
		pooled.Add(d)
		if i <= 5 {
			a.Add(d)
		} else {
			b.Add(d)
		}
	}
	a.Merge(&b)
	if a.Count() != pooled.Count() {
		t.Fatalf("count = %d, want %d", a.Count(), pooled.Count())
	}
	if a.Max() != pooled.Max() || a.Min() != pooled.Min() {
		t.Fatalf("min/max = %v/%v", a.Min(), a.Max())
	}
	if a.Mean() != pooled.Mean() {
		t.Fatalf("mean = %v, want %v", a.Mean(), pooled.Mean())
	}
	if a.Quantile(0.5) != pooled.Quantile(0.5) {
		t.Fatalf("median = %v, want %v", a.Quantile(0.5), pooled.Quantile(0.5))
	}
	// Merging a nil is a no-op.
	before := a.Count()
	a.Merge(nil)
	if a.Count() != before {
		t.Fatal("nil merge changed the stats")
	}
}

func TestSampleMergeSeenAccounting(t *testing.T) {
	src := NewSample(4)
	for i := 0; i < 100; i++ {
		src.Add(float64(i))
	}
	dst := NewSample(8)
	dst.Merge(src)
	// The merged store retains at most src's reservoir but must still
	// account for everything src saw.
	if dst.Count() != 100 {
		t.Fatalf("Count = %d, want 100", dst.Count())
	}
	if dst.Retained() != 4 {
		t.Fatalf("Retained = %d, want 4", dst.Retained())
	}
}
