package stats

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is a simple column-aligned table for experiment reports. It renders
// both as padded text (for terminals) and CSV (for plotting).
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// AddRow appends a row; cells are formatted with %v. Short rows are padded
// with empty cells, long rows are truncated to the header width.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = fmt.Sprintf("%v", cells[i])
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the formatted cells (for tests and programmatic access).
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if w := utf8.RuneCountInString(cell); w > widths[i] {
				widths[i] = w
			}
		}
	}
	if t.title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.headers); err != nil {
		return err
	}
	rule := make([]string, len(t.headers))
	for i, wd := range widths {
		rule[i] = strings.Repeat("-", wd)
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as CSV (headers first, no title).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(escapeCSV(t.headers), ",")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(escapeCSV(row), ",")); err != nil {
			return err
		}
	}
	return nil
}

// String renders the text form.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.WriteText(&sb)
	return sb.String()
}

// pad right-pads to width in runes (cells may hold multi-byte characters
// such as ±).
func pad(s string, width int) string {
	n := utf8.RuneCountInString(s)
	if n >= width {
		return s
	}
	return s + strings.Repeat(" ", width-n)
}

func escapeCSV(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		out[i] = c
	}
	return out
}
