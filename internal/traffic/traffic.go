// Package traffic provides the source models that drive the simulated
// piconet: packet size distributions and arrival processes. The paper's
// §4.1 sources are CBR with either uniform (GS flows: 144–176 bytes every
// 20 ms) or fixed (BE flows: 176 bytes) packet sizes.
package traffic

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// SizeDist draws higher-layer packet sizes in bytes.
type SizeDist interface {
	// Draw returns one packet size (always >= 1).
	Draw(rng *rand.Rand) int
	// Bounds returns the inclusive [min, max] support of the
	// distribution, which feeds the flow's TSpec (m, M).
	Bounds() (minSize, maxSize int)
	// Name identifies the distribution in reports.
	Name() string
}

// FixedSize always draws the same size.
type FixedSize int

var _ SizeDist = FixedSize(0)

// Draw implements SizeDist.
func (f FixedSize) Draw(*rand.Rand) int {
	if f < 1 {
		return 1
	}
	return int(f)
}

// Bounds implements SizeDist.
func (f FixedSize) Bounds() (int, int) {
	n := int(f)
	if n < 1 {
		n = 1
	}
	return n, n
}

// Name implements SizeDist. It reports the effective (clamped) size, so a
// report never labels a distribution the simulation did not actually run.
func (f FixedSize) Name() string {
	n, _ := f.Bounds()
	return fmt.Sprintf("fixed(%d)", n)
}

// UniformSize draws sizes uniformly from [Min, Max] inclusive, the paper's
// GS packet size distribution.
type UniformSize struct {
	Min, Max int
}

var _ SizeDist = UniformSize{}

// Draw implements SizeDist.
func (u UniformSize) Draw(rng *rand.Rand) int {
	lo, hi := u.Bounds()
	if lo == hi {
		return lo
	}
	return lo + rng.Intn(hi-lo+1)
}

// Bounds implements SizeDist.
func (u UniformSize) Bounds() (int, int) {
	lo, hi := u.Min, u.Max
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// Name implements SizeDist. Like Draw and Bounds it reflects the effective
// (clamped) support rather than the raw parameters.
func (u UniformSize) Name() string {
	lo, hi := u.Bounds()
	return fmt.Sprintf("uniform(%d,%d)", lo, hi)
}

// Generator produces the inter-arrival time to the next packet. Generators
// may be stateful; all randomness comes from the supplied rng.
type Generator interface {
	// NextInterval returns the time between the previous packet and the
	// next one (> 0).
	NextInterval(rng *rand.Rand) time.Duration
	// Name identifies the process in reports.
	Name() string
}

// BurstGenerator is an optional Generator extension for batched emission:
// NextBurst returns the next run of inter-arrival gaps in one call, drawn
// exactly as the same number of successive NextInterval calls would draw
// them (same values, same RNG consumption). Sources that understand it
// can schedule one kernel event per burst instead of one per packet,
// pre-enqueueing the burst's future-dated arrivals (see
// piconet.EnqueuePacketAt). A burst ends where the generator would next
// need fresh randomness to continue — an ON/OFF source returns one ON
// burst per call — or at max gaps, whichever comes first.
type BurstGenerator interface {
	Generator
	// NextBurst appends up to max gaps to dst and returns it. At least
	// one gap is returned when max > 0.
	NextBurst(rng *rand.Rand, dst []time.Duration, max int) []time.Duration
}

// CBR emits one packet every Interval, the paper's arrival process for both
// GS and BE sources.
type CBR struct {
	Interval time.Duration
}

var (
	_ Generator      = CBR{}
	_ BurstGenerator = CBR{}
)

// NextInterval implements Generator.
func (c CBR) NextInterval(*rand.Rand) time.Duration {
	if c.Interval <= 0 {
		return time.Millisecond
	}
	return c.Interval
}

// Name implements Generator.
func (c CBR) Name() string { return fmt.Sprintf("cbr(%v)", c.Interval) }

// NextBurst implements BurstGenerator. A constant-rate source needs no
// randomness, so every call fills the whole batch.
func (c CBR) NextBurst(rng *rand.Rand, dst []time.Duration, max int) []time.Duration {
	for i := 0; i < max; i++ {
		dst = append(dst, c.NextInterval(rng))
	}
	return dst
}

// CBRForRate returns the CBR process that carries rate bits per second with
// packets of the given mean size in bytes. This mirrors the paper's BE
// sources, e.g. 176-byte packets at 41.6 kbps.
func CBRForRate(bitsPerSecond float64, meanPacketBytes int) CBR {
	if bitsPerSecond <= 0 || meanPacketBytes <= 0 {
		return CBR{Interval: time.Millisecond}
	}
	// Round to the nearest nanosecond: truncation would bias every
	// interval short, so the emitted rate would systematically overshoot
	// the requested one (e.g. the paper's 41.6 kbps BE sources).
	sec := float64(meanPacketBytes) * 8 / bitsPerSecond
	return CBR{Interval: time.Duration(math.Round(sec * float64(time.Second)))}
}

// Poisson emits packets with exponential inter-arrival times at the given
// mean rate (packets per second).
type Poisson struct {
	PacketsPerSecond float64
}

var _ Generator = Poisson{}

// NextInterval implements Generator.
func (p Poisson) NextInterval(rng *rand.Rand) time.Duration {
	if p.PacketsPerSecond <= 0 {
		return time.Millisecond
	}
	sec := rng.ExpFloat64() / p.PacketsPerSecond
	d := time.Duration(sec * float64(time.Second))
	if d <= 0 {
		d = time.Nanosecond
	}
	return d
}

// Name implements Generator.
func (p Poisson) Name() string { return fmt.Sprintf("poisson(%.1f/s)", p.PacketsPerSecond) }

// OnOff alternates exponential ON periods, during which it emits CBR
// traffic, with exponential OFF silences. Create with NewOnOff.
//
// Accounting: every emitted packet consumes exactly one interval of ON
// time, and the unused tail of an ON period (shorter than one interval)
// carries over into the next ON period's budget, so the long-run packet
// rate is exactly dutyCycle/interval with
// dutyCycle = meanOn/(meanOn+meanOff) — no burst gets a free packet and
// no ON time is silently discarded. The source starts in the stationary
// phase: with probability meanOff/(meanOn+meanOff) the first packet is
// preceded by a residual OFF silence.
type OnOff struct {
	meanOn, meanOff time.Duration
	interval        time.Duration
	remainingOn     time.Duration
	started         bool
}

var (
	_ Generator      = (*OnOff)(nil)
	_ BurstGenerator = (*OnOff)(nil)
)

// NewOnOff returns an ON/OFF source with the given mean ON and OFF period
// lengths emitting one packet per interval while ON.
func NewOnOff(meanOn, meanOff, interval time.Duration) *OnOff {
	if meanOn <= 0 {
		meanOn = time.Second
	}
	if meanOff <= 0 {
		meanOff = time.Second
	}
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	return &OnOff{meanOn: meanOn, meanOff: meanOff, interval: interval}
}

// expDur draws an exponential duration with the given mean, clamped to at
// least one nanosecond. Hoisted out of NextInterval so the hot path builds
// no per-call closure.
func expDur(rng *rand.Rand, mean time.Duration) time.Duration {
	d := time.Duration(rng.ExpFloat64() * float64(mean))
	if d <= 0 {
		d = time.Nanosecond
	}
	return d
}

// NextInterval implements Generator.
//
// RNG draw order (fixed, for reproducible replay): on the first call one
// Float64 selects the stationary starting phase, followed by one
// ExpFloat64 for the residual OFF silence when the source starts silent,
// then one ExpFloat64 for the first ON length. Afterwards, every time an
// ON period is exhausted, one ExpFloat64 draws the OFF gap and one
// ExpFloat64 draws the next ON length, in that order.
func (o *OnOff) NextInterval(rng *rand.Rand) time.Duration {
	var gap time.Duration
	if !o.started {
		o.started = true
		if rng.Float64()*float64(o.meanOn+o.meanOff) < float64(o.meanOff) {
			// Start inside an OFF period; the residual of an
			// exponential silence is exponential again.
			gap = expDur(rng, o.meanOff)
		}
		o.remainingOn = expDur(rng, o.meanOn)
	}
	for o.remainingOn < o.interval {
		// The ON period ends before the next emission: an OFF silence
		// rides into the gap and a fresh ON period tops up the budget.
		// The sub-interval tail stays in remainingOn rather than being
		// discarded — dropping it would bias the long-run rate low by
		// E[on mod interval] per burst — and no burst is ever credited
		// a free first packet; periods too short to accumulate one
		// interval emit nothing.
		gap += expDur(rng, o.meanOff)
		o.remainingOn += expDur(rng, o.meanOn)
	}
	o.remainingOn -= o.interval
	return gap + o.interval
}

// NextBurst implements BurstGenerator: one call returns (up to max) the
// rest of the current ON burst. The first gap may carry an OFF silence —
// exactly what NextInterval would have returned — and every further gap
// is a bare interval emitted while the remaining ON budget lasts, so the
// returned sequence and the RNG consumption match successive
// NextInterval calls gap for gap. The burst stops where the next
// emission would need a fresh OFF/ON draw.
func (o *OnOff) NextBurst(rng *rand.Rand, dst []time.Duration, max int) []time.Duration {
	if max <= 0 {
		return dst
	}
	// max caps the gaps appended by this call, not len(dst): callers may
	// accumulate across calls (CBR counts the same way).
	start := len(dst)
	dst = append(dst, o.NextInterval(rng))
	for len(dst)-start < max && o.remainingOn >= o.interval {
		o.remainingOn -= o.interval
		dst = append(dst, o.interval)
	}
	return dst
}

// Name implements Generator.
func (o *OnOff) Name() string {
	return fmt.Sprintf("onoff(on=%v,off=%v,ival=%v)", o.meanOn, o.meanOff, o.interval)
}
