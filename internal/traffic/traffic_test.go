package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestFixedSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := FixedSize(176)
	for i := 0; i < 10; i++ {
		if got := f.Draw(rng); got != 176 {
			t.Fatalf("Draw = %d, want 176", got)
		}
	}
	lo, hi := f.Bounds()
	if lo != 176 || hi != 176 {
		t.Fatalf("Bounds = %d,%d", lo, hi)
	}
	if got := FixedSize(0).Draw(rng); got != 1 {
		t.Fatalf("FixedSize(0).Draw = %d, want clamp to 1", got)
	}
}

func TestUniformSize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := UniformSize{Min: 144, Max: 176}
	seen := map[int]bool{}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := u.Draw(rng)
		if v < 144 || v > 176 {
			t.Fatalf("Draw = %d outside [144,176]", v)
		}
		seen[v] = true
		sum += float64(v)
	}
	if len(seen) != 33 {
		t.Fatalf("saw %d distinct sizes, want 33", len(seen))
	}
	if mean := sum / n; math.Abs(mean-160) > 1 {
		t.Fatalf("mean size = %v, want ~160", mean)
	}
}

func TestUniformSizeDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := UniformSize{Min: 0, Max: -5}
	lo, hi := u.Bounds()
	if lo != 1 || hi != 1 {
		t.Fatalf("Bounds = %d,%d, want clamped 1,1", lo, hi)
	}
	if got := u.Draw(rng); got != 1 {
		t.Fatalf("Draw = %d", got)
	}
}

func TestCBR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := CBR{Interval: 20 * time.Millisecond}
	for i := 0; i < 5; i++ {
		if got := c.NextInterval(rng); got != 20*time.Millisecond {
			t.Fatalf("NextInterval = %v", got)
		}
	}
	if got := (CBR{}).NextInterval(rng); got <= 0 {
		t.Fatalf("zero CBR interval should clamp, got %v", got)
	}
}

func TestCBRForRatePaperSources(t *testing.T) {
	// Paper BE flows: 176-byte packets at 41.6 kbps ->
	// interval = 176*8/41600 s ~= 33.846 ms.
	c := CBRForRate(41600, 176)
	sec := 176.0 * 8 / 41600
	want := time.Duration(sec * float64(time.Second))
	if diff := c.Interval - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("Interval = %v, want %v", c.Interval, want)
	}
	// Rate sanity: bytes per second back out to the requested rate.
	rate := float64(176*8) / c.Interval.Seconds()
	if math.Abs(rate-41600) > 1 {
		t.Fatalf("achieved rate %v, want 41600", rate)
	}
	if got := CBRForRate(0, 176).Interval; got <= 0 {
		t.Fatal("degenerate rate should clamp to positive interval")
	}
}

func TestPoissonMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Poisson{PacketsPerSecond: 50}
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		iv := p.NextInterval(rng)
		if iv <= 0 {
			t.Fatal("non-positive interval")
		}
		total += iv
	}
	gotRate := float64(n) / total.Seconds()
	if math.Abs(gotRate-50) > 2 {
		t.Fatalf("Poisson rate = %v, want ~50", gotRate)
	}
}

func TestOnOffAlternates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	o := NewOnOff(100*time.Millisecond, 200*time.Millisecond, 10*time.Millisecond)
	var gaps, regular int
	for i := 0; i < 5000; i++ {
		iv := o.NextInterval(rng)
		if iv <= 0 {
			t.Fatal("non-positive interval")
		}
		if iv == 10*time.Millisecond {
			regular++
		} else if iv > 10*time.Millisecond {
			gaps++
		}
	}
	if regular == 0 || gaps == 0 {
		t.Fatalf("ON/OFF degenerate: %d regular, %d gaps", regular, gaps)
	}
	// ON bursts should dominate: mean ON 100ms at 10ms spacing is ~10
	// packets per burst.
	if regular < gaps {
		t.Fatalf("expected more in-burst packets than gaps: %d vs %d", regular, gaps)
	}
}

func TestOnOffDefaults(t *testing.T) {
	o := NewOnOff(0, 0, 0)
	rng := rand.New(rand.NewSource(7))
	if iv := o.NextInterval(rng); iv <= 0 {
		t.Fatal("defaulted ON/OFF must produce positive intervals")
	}
}

// TestPropertySizeDistsRespectBounds: all draws fall inside Bounds.
func TestPropertySizeDistsRespectBounds(t *testing.T) {
	f := func(minRaw, maxRaw uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := UniformSize{Min: int(minRaw), Max: int(maxRaw)}
		lo, hi := u.Bounds()
		if lo < 1 || hi < lo {
			return false
		}
		for i := 0; i < 50; i++ {
			v := u.Draw(rng)
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(53))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorNames(t *testing.T) {
	names := []string{
		CBR{Interval: time.Millisecond}.Name(),
		Poisson{PacketsPerSecond: 10}.Name(),
		NewOnOff(time.Second, time.Second, time.Millisecond).Name(),
		FixedSize(176).Name(),
		UniformSize{Min: 144, Max: 176}.Name(),
	}
	for _, n := range names {
		if n == "" {
			t.Fatal("empty name")
		}
	}
}
