package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestFixedSize(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := FixedSize(176)
	for i := 0; i < 10; i++ {
		if got := f.Draw(rng); got != 176 {
			t.Fatalf("Draw = %d, want 176", got)
		}
	}
	lo, hi := f.Bounds()
	if lo != 176 || hi != 176 {
		t.Fatalf("Bounds = %d,%d", lo, hi)
	}
	if got := FixedSize(0).Draw(rng); got != 1 {
		t.Fatalf("FixedSize(0).Draw = %d, want clamp to 1", got)
	}
}

func TestUniformSize(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	u := UniformSize{Min: 144, Max: 176}
	seen := map[int]bool{}
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := u.Draw(rng)
		if v < 144 || v > 176 {
			t.Fatalf("Draw = %d outside [144,176]", v)
		}
		seen[v] = true
		sum += float64(v)
	}
	if len(seen) != 33 {
		t.Fatalf("saw %d distinct sizes, want 33", len(seen))
	}
	if mean := sum / n; math.Abs(mean-160) > 1 {
		t.Fatalf("mean size = %v, want ~160", mean)
	}
}

func TestUniformSizeDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := UniformSize{Min: 0, Max: -5}
	lo, hi := u.Bounds()
	if lo != 1 || hi != 1 {
		t.Fatalf("Bounds = %d,%d, want clamped 1,1", lo, hi)
	}
	if got := u.Draw(rng); got != 1 {
		t.Fatalf("Draw = %d", got)
	}
}

func TestCBR(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := CBR{Interval: 20 * time.Millisecond}
	for i := 0; i < 5; i++ {
		if got := c.NextInterval(rng); got != 20*time.Millisecond {
			t.Fatalf("NextInterval = %v", got)
		}
	}
	if got := (CBR{}).NextInterval(rng); got <= 0 {
		t.Fatalf("zero CBR interval should clamp, got %v", got)
	}
}

func TestCBRForRatePaperSources(t *testing.T) {
	// Paper BE flows: 176-byte packets at 41.6 kbps ->
	// interval = 176*8/41600 s ~= 33.846154 ms. The exact interval is
	// 33846153.846... ns: truncation would keep 33846153 ns and push the
	// emitted rate above the requested one; rounding must pick 33846154.
	c := CBRForRate(41600, 176)
	if want := 33846154 * time.Nanosecond; c.Interval != want {
		t.Fatalf("Interval = %v, want rounded %v", c.Interval, want)
	}
	if got := CBRForRate(0, 176).Interval; got <= 0 {
		t.Fatal("degenerate rate should clamp to positive interval")
	}
}

// TestCBRForRateAchievedRate pins the achieved rate: over the paper's BE
// rates (plus awkward ones), the emitted bits/s must match the request to
// within the half-nanosecond-per-interval rounding granularity — and in
// particular must no longer systematically overshoot.
func TestCBRForRateAchievedRate(t *testing.T) {
	rates := []float64{41600, 47200, 52800, 58400, 60000, 70000, 90000, 123457}
	var bias float64
	for _, rate := range rates {
		c := CBRForRate(rate, 176)
		achieved := float64(176*8) / c.Interval.Seconds()
		// Half a nanosecond of interval error translates to at most
		// rate^2/(2*bits*1e9) bits/s of rate error.
		tol := rate * rate / (2 * 176 * 8 * 1e9)
		if diff := math.Abs(achieved - rate); diff > tol+1e-9 {
			t.Fatalf("rate %v: achieved %v (err %v, tol %v)", rate, achieved, diff, tol)
		}
		bias += achieved - rate
	}
	// Truncation erred high on every non-exact rate; rounding must not.
	if bias > 0.05*float64(len(rates)) {
		t.Fatalf("achieved rates still biased high: mean bias %v bits/s", bias/float64(len(rates)))
	}
}

func TestPoissonMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := Poisson{PacketsPerSecond: 50}
	var total time.Duration
	const n = 20000
	for i := 0; i < n; i++ {
		iv := p.NextInterval(rng)
		if iv <= 0 {
			t.Fatal("non-positive interval")
		}
		total += iv
	}
	gotRate := float64(n) / total.Seconds()
	if math.Abs(gotRate-50) > 2 {
		t.Fatalf("Poisson rate = %v, want ~50", gotRate)
	}
}

func TestOnOffAlternates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	o := NewOnOff(100*time.Millisecond, 200*time.Millisecond, 10*time.Millisecond)
	var gaps, regular int
	for i := 0; i < 5000; i++ {
		iv := o.NextInterval(rng)
		if iv <= 0 {
			t.Fatal("non-positive interval")
		}
		if iv == 10*time.Millisecond {
			regular++
		} else if iv > 10*time.Millisecond {
			gaps++
		}
	}
	if regular == 0 || gaps == 0 {
		t.Fatalf("ON/OFF degenerate: %d regular, %d gaps", regular, gaps)
	}
	// ON bursts should dominate: mean ON 100ms at 10ms spacing is ~10
	// packets per burst.
	if regular < gaps {
		t.Fatalf("expected more in-burst packets than gaps: %d vs %d", regular, gaps)
	}
}

// TestOnOffDutyCycle is the burst-accounting regression test: with every
// packet consuming exactly one interval of ON time and unused ON tails
// carried into the next period, the measured duty cycle
// n*interval/elapsed must converge to meanOn/(meanOn+meanOff) at every
// seed. The old accounting handed each burst a free first packet (bias
// high); discarding the sub-interval tails instead would bias it low by
// E[on mod interval] per burst (≈0.238 here instead of 0.25).
func TestOnOffDutyCycle(t *testing.T) {
	meanOn, meanOff := 50*time.Millisecond, 150*time.Millisecond
	interval := 5 * time.Millisecond
	want := float64(meanOn) / float64(meanOn+meanOff)
	for _, seed := range []int64{1, 2, 8, 42} {
		rng := rand.New(rand.NewSource(seed))
		o := NewOnOff(meanOn, meanOff, interval)
		var elapsed time.Duration
		const n = 200000
		for i := 0; i < n; i++ {
			elapsed += o.NextInterval(rng)
		}
		got := float64(n) * interval.Seconds() / elapsed.Seconds()
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("seed %d: duty cycle = %.4f, want %.4f ± 0.01", seed, got, want)
		}
	}
}

// TestOnOffStationaryStart: the source must be able to begin inside an OFF
// period, with the stationary probability meanOff/(meanOn+meanOff).
func TestOnOffStationaryStart(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	meanOn, meanOff := 100*time.Millisecond, 300*time.Millisecond
	interval := time.Millisecond
	const trials = 4000
	silentStarts := 0
	for i := 0; i < trials; i++ {
		o := NewOnOff(meanOn, meanOff, interval)
		// A first interval well above the CBR spacing means the source
		// started silent (mean ON of 100 intervals makes a sub-interval
		// first burst negligible).
		if o.NextInterval(rng) > 10*interval {
			silentStarts++
		}
	}
	got := float64(silentStarts) / trials
	want := float64(meanOff) / float64(meanOn+meanOff)
	if math.Abs(got-want) > 0.03 {
		t.Fatalf("silent-start fraction = %.3f, want %.3f ± 0.03", got, want)
	}
}

func TestOnOffDefaults(t *testing.T) {
	o := NewOnOff(0, 0, 0)
	rng := rand.New(rand.NewSource(7))
	if iv := o.NextInterval(rng); iv <= 0 {
		t.Fatal("defaulted ON/OFF must produce positive intervals")
	}
}

// TestPropertySizeDistsRespectBounds: all draws fall inside Bounds.
func TestPropertySizeDistsRespectBounds(t *testing.T) {
	f := func(minRaw, maxRaw uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := UniformSize{Min: int(minRaw), Max: int(maxRaw)}
		lo, hi := u.Bounds()
		if lo < 1 || hi < lo {
			return false
		}
		for i := 0; i < 50; i++ {
			v := u.Draw(rng)
			if v < lo || v > hi {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(53))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestNamesReflectEffectiveBounds: Name must describe the clamped
// distribution the simulation actually runs, not the raw parameters.
func TestNamesReflectEffectiveBounds(t *testing.T) {
	cases := []struct {
		dist SizeDist
		want string
	}{
		{FixedSize(176), "fixed(176)"},
		{FixedSize(0), "fixed(1)"},
		{FixedSize(-3), "fixed(1)"},
		{UniformSize{Min: 144, Max: 176}, "uniform(144,176)"},
		{UniformSize{Min: 0, Max: -5}, "uniform(1,1)"},
		{UniformSize{Min: 200, Max: 100}, "uniform(200,200)"},
	}
	rng := rand.New(rand.NewSource(10))
	for _, c := range cases {
		if got := c.dist.Name(); got != c.want {
			t.Fatalf("Name = %q, want %q", got, c.want)
		}
		lo, hi := c.dist.Bounds()
		for i := 0; i < 20; i++ {
			if v := c.dist.Draw(rng); v < lo || v > hi {
				t.Fatalf("%s drew %d outside its advertised [%d,%d]", c.dist.Name(), v, lo, hi)
			}
		}
	}
}

func TestGeneratorNames(t *testing.T) {
	names := []string{
		CBR{Interval: time.Millisecond}.Name(),
		Poisson{PacketsPerSecond: 10}.Name(),
		NewOnOff(time.Second, time.Second, time.Millisecond).Name(),
		FixedSize(176).Name(),
		UniformSize{Min: 144, Max: 176}.Name(),
	}
	for _, n := range names {
		if n == "" {
			t.Fatal("empty name")
		}
	}
}

// TestCBRNextBurstMatchesNextInterval checks batch emission draws the
// exact sequence repeated NextInterval calls would.
func TestCBRNextBurstMatchesNextInterval(t *testing.T) {
	gen := CBR{Interval: 20 * time.Millisecond}
	rng := rand.New(rand.NewSource(7))
	burst := gen.NextBurst(rng, nil, 5)
	if len(burst) != 5 {
		t.Fatalf("burst length %d, want 5", len(burst))
	}
	ref := CBR{Interval: 20 * time.Millisecond}
	refRng := rand.New(rand.NewSource(7))
	for i, got := range burst {
		if want := ref.NextInterval(refRng); got != want {
			t.Fatalf("gap %d: %v, want %v", i, got, want)
		}
	}
}

// TestOnOffNextBurstMatchesNextInterval replays an ON/OFF source both
// ways from identical RNG states: the batched gaps, their order and the
// randomness consumed must be indistinguishable from per-packet draws.
func TestOnOffNextBurstMatchesNextInterval(t *testing.T) {
	const seed = 42
	batched := NewOnOff(50*time.Millisecond, 30*time.Millisecond, 5*time.Millisecond)
	serial := NewOnOff(50*time.Millisecond, 30*time.Millisecond, 5*time.Millisecond)
	bRng := rand.New(rand.NewSource(seed))
	sRng := rand.New(rand.NewSource(seed))
	var got []time.Duration
	for len(got) < 500 {
		got = batched.NextBurst(bRng, got, 64)
	}
	for i, g := range got {
		if want := serial.NextInterval(sRng); g != want {
			t.Fatalf("gap %d: batched %v, serial %v", i, g, want)
		}
	}
	// Both generators must land in the same RNG state.
	if bRng.Int63() != sRng.Int63() {
		t.Fatal("batched and serial paths consumed different randomness")
	}
}

// TestOnOffNextBurstBoundaries checks a burst never spans an OFF gap
// after its first element: only the first gap may exceed the interval.
func TestOnOffNextBurstBoundaries(t *testing.T) {
	gen := NewOnOff(40*time.Millisecond, 40*time.Millisecond, 5*time.Millisecond)
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 200; round++ {
		burst := gen.NextBurst(rng, nil, 1024)
		if len(burst) == 0 {
			t.Fatal("empty burst")
		}
		for i, g := range burst[1:] {
			if g != 5*time.Millisecond {
				t.Fatalf("round %d: gap %d = %v, want the bare interval", round, i+1, g)
			}
		}
	}
	if got := gen.NextBurst(rng, nil, 0); len(got) != 0 {
		t.Fatalf("max=0 returned %d gaps", len(got))
	}
}
