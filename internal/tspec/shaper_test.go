package tspec

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestShaperPassesConformantTraffic(t *testing.T) {
	s := NewShaper(CBR(20*time.Millisecond, 144, 176))
	for i := 0; i < 100; i++ {
		arrival := time.Duration(i) * 20 * time.Millisecond
		at, ok := s.Release(arrival, 176)
		if !ok {
			t.Fatalf("packet %d rejected", i)
		}
		if at > arrival+time.Microsecond {
			t.Fatalf("conformant packet %d delayed to %v (arrived %v)", i, at, arrival)
		}
	}
}

func TestShaperDelaysBurst(t *testing.T) {
	// Ten max-size packets arriving at once through an 8.8 kB/s bucket:
	// the shaper spreads them at 20 ms apart.
	s := NewShaper(CBR(20*time.Millisecond, 144, 176))
	var prev time.Duration
	for i := 0; i < 10; i++ {
		at, ok := s.Release(0, 176)
		if !ok {
			t.Fatalf("packet %d rejected", i)
		}
		if i > 0 {
			gap := at - prev
			if gap < 19*time.Millisecond || gap > 21*time.Millisecond {
				t.Fatalf("packet %d released %v after previous, want ~20ms", i, gap)
			}
		}
		prev = at
	}
}

func TestShaperRejectsOversize(t *testing.T) {
	s := NewShaper(CBR(20*time.Millisecond, 144, 176))
	if _, ok := s.Release(0, 177); ok {
		t.Fatal("oversize packet accepted")
	}
}

func TestShaperFIFO(t *testing.T) {
	// A large packet followed by a small one: the small one must not
	// overtake.
	spec := TSpec{PeakRate: 8800, TokenRate: 8800, BucketSize: 176, MinPolicedUnit: 10, MaxTransferUnit: 176}
	s := NewShaper(spec)
	first, ok := s.Release(0, 176)
	if !ok {
		t.Fatal("first rejected")
	}
	second, ok := s.Release(0, 10)
	if !ok {
		t.Fatal("second rejected")
	}
	if second <= first {
		t.Fatalf("FIFO violated: %v then %v", first, second)
	}
}

// TestPropertyShapedOutputConforms: whatever the arrival pattern, the
// shaper's output stream conforms to the spec (validated by an independent
// policing bucket) and preserves order.
func TestPropertyShapedOutputConforms(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		spec := CBR(time.Duration(5+rng.Intn(30))*time.Millisecond, 50, 50+rng.Intn(200))
		shaper := NewShaper(spec)
		police := NewBucket(spec)
		var now, prevOut time.Duration
		for i := 0; i < 200; i++ {
			now += time.Duration(rng.Intn(10_000)) * time.Microsecond
			size := 1 + rng.Intn(spec.MaxTransferUnit)
			out, ok := shaper.Release(now, size)
			if !ok {
				return false
			}
			if out < now || out < prevOut {
				return false // released early or reordered
			}
			prevOut = out
			if !police.Take(out, size) {
				return false // output not conformant
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(101))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
