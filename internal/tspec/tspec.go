// Package tspec implements the token bucket traffic specification of the
// IETF Guaranteed Service model (RFC 2210/2212), the arrival-curve bound it
// induces, and runtime conformance machinery (policer and shaper).
//
// A TSpec describes a flow by five parameters: peak rate p, token rate r,
// bucket size b, minimum policed unit m, and maximum transfer unit M. A flow
// conforms when, over every interval of length t, it sends no more than
// min(M + p*t, b + r*t) bytes, with every packet between m and M bytes
// (packets smaller than m are counted as m by the policer).
package tspec

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// Validation errors.
var (
	ErrNonPositiveRate = errors.New("tspec: rates must be positive")
	ErrPeakBelowToken  = errors.New("tspec: peak rate must be >= token rate")
	ErrBucketTooSmall  = errors.New("tspec: bucket size must be >= maximum transfer unit")
	ErrBadUnits        = errors.New("tspec: need 0 < m <= M")
)

// TSpec is a token bucket traffic specification. Rates are in bytes per
// second; sizes are in bytes.
type TSpec struct {
	// PeakRate is the peak rate p of the flow (bytes/s).
	PeakRate float64
	// TokenRate is the sustained token rate r (bytes/s).
	TokenRate float64
	// BucketSize is the token bucket depth b (bytes).
	BucketSize float64
	// MinPolicedUnit is the minimum policed unit m (bytes): any packet
	// smaller than m is counted as m bytes.
	MinPolicedUnit int
	// MaxTransferUnit is the maximum packet size M (bytes).
	MaxTransferUnit int
}

// Validate checks the internal consistency required by RFC 2210: positive
// rates, p >= r, b >= M and 0 < m <= M.
func (t TSpec) Validate() error {
	if t.TokenRate <= 0 || t.PeakRate <= 0 {
		return ErrNonPositiveRate
	}
	if t.PeakRate < t.TokenRate {
		return ErrPeakBelowToken
	}
	if t.MinPolicedUnit <= 0 || t.MinPolicedUnit > t.MaxTransferUnit {
		return ErrBadUnits
	}
	if t.BucketSize < float64(t.MaxTransferUnit) {
		return ErrBucketTooSmall
	}
	return nil
}

// String renders the spec compactly.
func (t TSpec) String() string {
	return fmt.Sprintf("TSpec{p=%.1fB/s r=%.1fB/s b=%.0fB m=%d M=%d}",
		t.PeakRate, t.TokenRate, t.BucketSize, t.MinPolicedUnit, t.MaxTransferUnit)
}

// ArrivalBound returns the maximum number of bytes a conformant flow may
// send in any interval of length d: min(M + p*d, b + r*d), per RFC 2212.
// For d <= 0 it returns M (one maximal packet may always be in flight).
func (t TSpec) ArrivalBound(d time.Duration) float64 {
	if d <= 0 {
		return float64(t.MaxTransferUnit)
	}
	sec := d.Seconds()
	peak := float64(t.MaxTransferUnit) + t.PeakRate*sec
	sustained := t.BucketSize + t.TokenRate*sec
	return math.Min(peak, sustained)
}

// BusyPeriod returns the horizon after which the sustained branch of the
// arrival curve dominates the peak branch: the t where M + p*t = b + r*t.
// For p == r it returns zero.
func (t TSpec) BusyPeriod() time.Duration {
	if t.PeakRate <= t.TokenRate {
		return 0
	}
	sec := (t.BucketSize - float64(t.MaxTransferUnit)) / (t.PeakRate - t.TokenRate)
	if sec < 0 {
		sec = 0
	}
	return time.Duration(sec * float64(time.Second))
}

// CBR returns the TSpec of a constant-bit-rate source that emits one packet
// of at most maxSize (and at least minSize) bytes every interval, which is
// exactly how the paper's §4.1 sources are specified: p = r = maxSize /
// interval, b = M = maxSize, m = minSize.
func CBR(interval time.Duration, minSize, maxSize int) TSpec {
	rate := float64(maxSize) / interval.Seconds()
	return TSpec{
		PeakRate:        rate,
		TokenRate:       rate,
		BucketSize:      float64(maxSize),
		MinPolicedUnit:  minSize,
		MaxTransferUnit: maxSize,
	}
}

// Bucket is a runtime token bucket that polices a flow against a TSpec. The
// bucket starts full. It tracks both the sustained bucket (depth b, rate r)
// and the peak constraint (one MTU of burst at rate p).
type Bucket struct {
	spec TSpec
	// tokens is the sustained-bucket fill in bytes, <= spec.BucketSize.
	tokens float64
	// peakTokens polices the peak-rate envelope M + p*t.
	peakTokens float64
	last       time.Duration
	primed     bool
}

// NewBucket returns a full token bucket for the given spec.
func NewBucket(spec TSpec) *Bucket {
	return &Bucket{
		spec:       spec,
		tokens:     spec.BucketSize,
		peakTokens: float64(spec.MaxTransferUnit),
	}
}

// Spec returns the bucket's traffic specification.
func (b *Bucket) Spec() TSpec { return b.spec }

// advance refills tokens for the elapsed time since the previous call.
func (b *Bucket) advance(now time.Duration) {
	if !b.primed {
		b.last = now
		b.primed = true
		return
	}
	if now < b.last {
		return // clock must not run backwards; ignore
	}
	sec := (now - b.last).Seconds()
	b.tokens = math.Min(b.spec.BucketSize, b.tokens+b.spec.TokenRate*sec)
	b.peakTokens = math.Min(float64(b.spec.MaxTransferUnit), b.peakTokens+b.spec.PeakRate*sec)
	b.last = now
}

// policedSize applies the minimum policed unit.
func (b *Bucket) policedSize(size int) float64 {
	if size < b.spec.MinPolicedUnit {
		size = b.spec.MinPolicedUnit
	}
	return float64(size)
}

// Conforms reports whether a packet of the given size arriving at now
// conforms, without consuming tokens.
func (b *Bucket) Conforms(now time.Duration, size int) bool {
	b.advance(now)
	if size > b.spec.MaxTransferUnit {
		return false
	}
	need := b.policedSize(size)
	// A tiny epsilon absorbs float rounding on exactly-conformant CBR
	// arrivals (one packet per refill interval).
	const eps = 1e-6
	return need <= b.tokens+eps && need <= b.peakTokens+eps
}

// Take consumes tokens for a packet of the given size arriving at now and
// reports whether it conformed. Non-conformant packets consume nothing.
func (b *Bucket) Take(now time.Duration, size int) bool {
	if !b.Conforms(now, size) {
		return false
	}
	need := b.policedSize(size)
	b.tokens -= need
	b.peakTokens -= need
	if b.tokens < 0 {
		b.tokens = 0
	}
	if b.peakTokens < 0 {
		b.peakTokens = 0
	}
	return true
}

// NextConformance returns the earliest time at or after now at which a
// packet of the given size would conform. It returns ok=false when the
// packet can never conform (size exceeds the MTU).
func (b *Bucket) NextConformance(now time.Duration, size int) (time.Duration, bool) {
	if size > b.spec.MaxTransferUnit {
		return 0, false
	}
	b.advance(now)
	need := b.policedSize(size)
	wait := 0.0
	if need > b.tokens {
		wait = (need - b.tokens) / b.spec.TokenRate
	}
	if need > b.peakTokens {
		peakWait := (need - b.peakTokens) / b.spec.PeakRate
		if peakWait > wait {
			wait = peakWait
		}
	}
	return now + time.Duration(wait*float64(time.Second)), true
}

// Tokens returns the current sustained-bucket fill after advancing to now.
// Exposed for tests and diagnostics.
func (b *Bucket) Tokens(now time.Duration) float64 {
	b.advance(now)
	return b.tokens
}

// Shaper delays packets until they conform to a TSpec instead of dropping
// them (RFC 2210 reshaping at a network element's ingress). Packets are
// released in FIFO order. Create with NewShaper.
type Shaper struct {
	bucket *Bucket
	// nextFree is when the previously shaped packet releases; FIFO order
	// forbids reordering even if a later small packet would conform
	// earlier.
	nextFree time.Duration
}

// NewShaper returns a shaper for the spec.
func NewShaper(spec TSpec) *Shaper {
	return &Shaper{bucket: NewBucket(spec)}
}

// Spec returns the shaper's traffic specification.
func (s *Shaper) Spec() TSpec { return s.bucket.Spec() }

// Release returns the time at or after arrival at which a packet of the
// given size may enter the network, and consumes its tokens at that time.
// ok is false when the packet can never conform (it exceeds the MTU) and
// should be rejected.
func (s *Shaper) Release(arrival time.Duration, size int) (time.Duration, bool) {
	at := arrival
	if s.nextFree > at {
		at = s.nextFree
	}
	conformAt, ok := s.bucket.NextConformance(at, size)
	if !ok {
		return 0, false
	}
	if conformAt > at {
		at = conformAt
	}
	// A hair of slack absorbs float rounding in NextConformance.
	at += time.Nanosecond
	if !s.bucket.Take(at, size) {
		// Defensive: NextConformance guaranteed conformance here.
		at += time.Millisecond
		s.bucket.Take(at, size)
	}
	s.nextFree = at
	return at, true
}
