package tspec

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func validSpec() TSpec {
	return TSpec{
		PeakRate:        16000,
		TokenRate:       8800,
		BucketSize:      352,
		MinPolicedUnit:  144,
		MaxTransferUnit: 176,
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*TSpec)
		wantErr error
	}{
		{"valid", func(*TSpec) {}, nil},
		{"zero token rate", func(s *TSpec) { s.TokenRate = 0 }, ErrNonPositiveRate},
		{"negative peak", func(s *TSpec) { s.PeakRate = -1 }, ErrNonPositiveRate},
		{"peak below token", func(s *TSpec) { s.PeakRate = s.TokenRate / 2 }, ErrPeakBelowToken},
		{"bucket below MTU", func(s *TSpec) { s.BucketSize = 100 }, ErrBucketTooSmall},
		{"zero m", func(s *TSpec) { s.MinPolicedUnit = 0 }, ErrBadUnits},
		{"m above M", func(s *TSpec) { s.MinPolicedUnit = 200 }, ErrBadUnits},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := validSpec()
			tt.mutate(&s)
			err := s.Validate()
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestCBRPaperSpec(t *testing.T) {
	// Paper §4.1: GS sources send one uniformly distributed packet of
	// 144..176 bytes every 20 ms: p = r = 8.8 kB/s, b = M = 176, m = 144.
	s := CBR(20*time.Millisecond, 144, 176)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got, want := s.TokenRate, 8800.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("TokenRate = %v, want %v", got, want)
	}
	if s.PeakRate != s.TokenRate {
		t.Fatalf("CBR peak %v != token %v", s.PeakRate, s.TokenRate)
	}
	if s.BucketSize != 176 || s.MaxTransferUnit != 176 || s.MinPolicedUnit != 144 {
		t.Fatalf("unexpected CBR spec: %v", s)
	}
}

func TestArrivalBound(t *testing.T) {
	s := validSpec()
	if got := s.ArrivalBound(0); got != 176 {
		t.Fatalf("ArrivalBound(0) = %v, want M", got)
	}
	if got := s.ArrivalBound(-time.Second); got != 176 {
		t.Fatalf("ArrivalBound(<0) = %v, want M", got)
	}
	// At small t the peak branch dominates: M + p*t.
	small := 10 * time.Millisecond
	wantPeak := 176 + 16000*small.Seconds()
	if got := s.ArrivalBound(small); math.Abs(got-wantPeak) > 1e-6 {
		t.Fatalf("ArrivalBound(%v) = %v, want peak branch %v", small, got, wantPeak)
	}
	// At large t the sustained branch dominates: b + r*t.
	large := 10 * time.Second
	wantSustained := 352 + 8800*large.Seconds()
	if got := s.ArrivalBound(large); math.Abs(got-wantSustained) > 1e-6 {
		t.Fatalf("ArrivalBound(%v) = %v, want sustained branch %v", large, got, wantSustained)
	}
}

func TestBusyPeriod(t *testing.T) {
	s := validSpec()
	// M + p*t = b + r*t  =>  t = (b-M)/(p-r) = (352-176)/(16000-8800).
	sec := (352.0 - 176.0) / (16000.0 - 8800.0)
	want := time.Duration(sec * float64(time.Second))
	if got := s.BusyPeriod(); got != want {
		t.Fatalf("BusyPeriod() = %v, want %v", got, want)
	}
	cbr := CBR(20*time.Millisecond, 144, 176)
	if got := cbr.BusyPeriod(); got != 0 {
		t.Fatalf("CBR BusyPeriod() = %v, want 0", got)
	}
}

func TestBucketCBRConformance(t *testing.T) {
	// A CBR flow sending exactly per its spec must always conform.
	s := CBR(20*time.Millisecond, 144, 176)
	b := NewBucket(s)
	for i := 0; i < 1000; i++ {
		now := time.Duration(i) * 20 * time.Millisecond
		if !b.Take(now, 176) {
			t.Fatalf("conformant CBR packet %d rejected", i)
		}
	}
}

func TestBucketRejectsBurst(t *testing.T) {
	s := CBR(20*time.Millisecond, 144, 176)
	b := NewBucket(s)
	if !b.Take(0, 176) {
		t.Fatal("first packet should conform")
	}
	// A second max-size packet at the same instant exceeds the bucket.
	if b.Take(0, 176) {
		t.Fatal("second simultaneous packet should not conform")
	}
	// And conforms again after a full refill interval.
	if !b.Take(20*time.Millisecond, 176) {
		t.Fatal("packet after refill interval should conform")
	}
}

func TestBucketOversizePacket(t *testing.T) {
	b := NewBucket(validSpec())
	if b.Conforms(0, 177) {
		t.Fatal("packet above MTU must never conform")
	}
	if _, ok := b.NextConformance(0, 177); ok {
		t.Fatal("NextConformance should report impossible for oversize packets")
	}
}

func TestBucketMinPolicedUnit(t *testing.T) {
	// Tiny packets are charged m bytes each, so only b/m of them fit in a burst.
	s := TSpec{PeakRate: 1000, TokenRate: 1000, BucketSize: 300, MinPolicedUnit: 100, MaxTransferUnit: 300}
	b := NewBucket(s)
	granted := 0
	for i := 0; i < 10; i++ {
		if b.Take(0, 1) {
			granted++
		}
	}
	if granted != 3 {
		t.Fatalf("granted %d one-byte packets in a burst, want 3 (b/m)", granted)
	}
}

func TestBucketNonConformantConsumesNothing(t *testing.T) {
	s := CBR(20*time.Millisecond, 144, 176)
	b := NewBucket(s)
	if !b.Take(0, 176) {
		t.Fatal("first packet should conform")
	}
	before := b.Tokens(0)
	if b.Take(0, 176) {
		t.Fatal("second packet should not conform")
	}
	if after := b.Tokens(0); after != before {
		t.Fatalf("non-conformant packet consumed tokens: %v -> %v", before, after)
	}
}

func TestNextConformance(t *testing.T) {
	s := CBR(20*time.Millisecond, 144, 176)
	b := NewBucket(s)
	if !b.Take(0, 176) {
		t.Fatal("first packet should conform")
	}
	at, ok := b.NextConformance(0, 176)
	if !ok {
		t.Fatal("NextConformance should be possible")
	}
	if at <= 0 || at > 20*time.Millisecond+time.Microsecond {
		t.Fatalf("NextConformance = %v, want ~20ms", at)
	}
	if !b.Conforms(at+time.Microsecond, 176) {
		t.Fatal("packet at NextConformance(+eps) should conform")
	}
}

func TestBucketClockBackwardsIgnored(t *testing.T) {
	b := NewBucket(CBR(20*time.Millisecond, 144, 176))
	if !b.Take(time.Second, 176) {
		t.Fatal("packet should conform")
	}
	// An earlier timestamp must not refill or panic.
	if b.Take(0, 176) {
		t.Fatal("backwards-clock packet should not conform (no refill)")
	}
}

// TestPropertyBucketNeverExceedsArrivalBound: for random conformant-ish
// arrival attempts, the accepted bytes over the whole run never exceed the
// arrival-curve bound for the elapsed interval.
func TestPropertyBucketNeverExceedsArrivalBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := TSpec{
			PeakRate:        float64(1000 + rng.Intn(50000)),
			TokenRate:       float64(500 + rng.Intn(20000)),
			BucketSize:      float64(200 + rng.Intn(2000)),
			MinPolicedUnit:  1 + rng.Intn(100),
			MaxTransferUnit: 0,
		}
		if s.PeakRate < s.TokenRate {
			s.PeakRate, s.TokenRate = s.TokenRate, s.PeakRate
		}
		s.MaxTransferUnit = s.MinPolicedUnit + rng.Intn(100)
		if s.BucketSize < float64(s.MaxTransferUnit) {
			s.BucketSize = float64(s.MaxTransferUnit)
		}
		if err := s.Validate(); err != nil {
			return true // skip degenerate draws
		}
		b := NewBucket(s)
		var now time.Duration
		accepted := 0.0
		for i := 0; i < 300; i++ {
			now += time.Duration(rng.Intn(5000)) * time.Microsecond
			size := 1 + rng.Intn(s.MaxTransferUnit)
			if b.Take(now, size) {
				polic := size
				if polic < s.MinPolicedUnit {
					polic = s.MinPolicedUnit
				}
				accepted += float64(polic)
			}
			// Slack of one policed unit for float rounding.
			if accepted > s.ArrivalBound(now)+1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNextConformanceIsTight: after waiting until NextConformance,
// the packet conforms; one millisecond before (when strictly positive), it
// does not.
func TestPropertyNextConformanceIsTight(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := CBR(time.Duration(1+rng.Intn(50))*time.Millisecond, 50, 50+rng.Intn(300))
		b := NewBucket(s)
		var now time.Duration
		for i := 0; i < 50; i++ {
			size := s.MinPolicedUnit + rng.Intn(s.MaxTransferUnit-s.MinPolicedUnit+1)
			at, ok := b.NextConformance(now, size)
			if !ok {
				return false
			}
			if at > now+time.Millisecond && b.Conforms(at-time.Millisecond, size) {
				return false
			}
			if !b.Take(at+time.Microsecond, size) {
				return false
			}
			now = at + time.Microsecond
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBucketTake(b *testing.B) {
	s := CBR(20*time.Millisecond, 144, 176)
	bkt := NewBucket(s)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bkt.Take(time.Duration(i)*20*time.Millisecond, 176)
	}
}
